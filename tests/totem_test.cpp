// Tests for the Totem single-ring protocol: ring formation, total order,
// loss recovery, token retransmission, membership changes, partitions, and
// the primary-component model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "totem/totem.hpp"

namespace cts::totem {
namespace {

Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string str(const SharedBytes& b) { return std::string(b.begin(), b.end()); }

/// A cluster of TotemNodes over one simulated LAN, with per-node delivery
/// and view logs.
struct Cluster {
  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<TotemNode>> nodes;
  std::map<std::uint32_t, std::vector<std::string>> delivered;
  std::map<std::uint32_t, std::vector<View>> views;

  explicit Cluster(std::size_t n, net::NetworkConfig ncfg = {}, TotemConfig tcfg = {},
                   std::uint64_t seed = 1)
      : sim(seed), net(sim, ncfg) {
    for (std::uint32_t i = 0; i < n; ++i) tcfg.universe.push_back(NodeId{i});
    for (std::uint32_t i = 0; i < n; ++i) {
      auto node = std::make_unique<TotemNode>(sim, net, NodeId{i}, tcfg);
      node->set_deliver_handler(
          [this, i](NodeId, const SharedBytes& b) { delivered[i].push_back(str(b)); });
      node->set_view_handler([this, i](const View& v) { views[i].push_back(v); });
      nodes.push_back(std::move(node));
    }
  }

  void start_all() {
    for (auto& n : nodes) n->start();
  }

  /// Run until every live node is operational in the same primary ring whose
  /// membership is exactly the set of live nodes.
  bool converge(Micros budget = 200'000) {
    std::vector<NodeId> live;
    for (auto& n : nodes) {
      if (n->state() != TotemNode::State::kDown) live.push_back(n->id());
    }
    const Micros deadline = sim.now() + budget;
    while (sim.now() < deadline) {
      sim.run_until(sim.now() + 1000);
      RingId ring = 0;
      bool ok = true;
      for (auto& n : nodes) {
        if (n->state() == TotemNode::State::kDown) continue;
        if (n->state() != TotemNode::State::kOperational || !n->view().primary ||
            n->view().members != live) {
          ok = false;
          break;
        }
        if (ring == 0) ring = n->view().ring_id;
        if (n->view().ring_id != ring) ok = false;
      }
      if (ok && ring != 0) return true;
    }
    return false;
  }
};

TEST(TotemRingTest, FourNodesFormOneRing) {
  Cluster c(4);
  c.start_all();
  ASSERT_TRUE(c.converge());
  for (auto& n : c.nodes) {
    EXPECT_EQ(n->view().members.size(), 4u);
    EXPECT_TRUE(n->view().primary);
    EXPECT_EQ(n->view().members.front(), NodeId{0});  // lowest id is leader
  }
}

TEST(TotemRingTest, SingletonUniverseFormsSingletonRing) {
  Cluster c(1);
  c.start_all();
  ASSERT_TRUE(c.converge());
  EXPECT_EQ(c.nodes[0]->view().members.size(), 1u);
}

TEST(TotemRingTest, AllMembersInstallSameView) {
  Cluster c(4);
  c.start_all();
  ASSERT_TRUE(c.converge());
  const auto& v0 = c.nodes[0]->view();
  for (auto& n : c.nodes) {
    EXPECT_EQ(n->view().ring_id, v0.ring_id);
    EXPECT_EQ(n->view().members, v0.members);
  }
}

TEST(TotemOrderTest, SingleSenderDeliveredEverywhereInOrder) {
  Cluster c(3);
  c.start_all();
  ASSERT_TRUE(c.converge());
  for (int i = 0; i < 20; ++i) c.nodes[0]->multicast(msg("m" + std::to_string(i)));
  c.sim.run_for(100'000);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_EQ(c.delivered[i].size(), 20u) << "node " << i;
    for (int j = 0; j < 20; ++j) EXPECT_EQ(c.delivered[i][j], "m" + std::to_string(j));
  }
}

TEST(TotemOrderTest, ConcurrentSendersAgreeOnOneTotalOrder) {
  Cluster c(4);
  c.start_all();
  ASSERT_TRUE(c.converge());
  for (int i = 0; i < 25; ++i) {
    for (std::uint32_t n = 0; n < 4; ++n) {
      c.nodes[n]->multicast(msg("n" + std::to_string(n) + "." + std::to_string(i)));
    }
  }
  c.sim.run_for(300'000);
  ASSERT_EQ(c.delivered[0].size(), 100u);
  for (std::uint32_t i = 1; i < 4; ++i) {
    EXPECT_EQ(c.delivered[i], c.delivered[0]) << "node " << i << " diverged from node 0";
  }
}

TEST(TotemOrderTest, SenderOrderPreservedWithinEachSender) {
  Cluster c(3);
  c.start_all();
  ASSERT_TRUE(c.converge());
  for (int i = 0; i < 30; ++i) c.nodes[1]->multicast(msg("a" + std::to_string(i)));
  c.sim.run_for(200'000);
  // Extract node 1's messages from node 2's delivery order.
  std::vector<std::string> mine;
  for (const auto& s : c.delivered[2]) {
    if (s[0] == 'a') mine.push_back(s);
  }
  ASSERT_EQ(mine.size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(mine[i], "a" + std::to_string(i));
}

TEST(TotemOrderTest, SelfDeliveryIncluded) {
  Cluster c(2);
  c.start_all();
  ASSERT_TRUE(c.converge());
  c.nodes[1]->multicast(msg("hello"));
  c.sim.run_for(50'000);
  ASSERT_EQ(c.delivered[1].size(), 1u);
  EXPECT_EQ(c.delivered[1][0], "hello");
}

TEST(TotemLossTest, TotalOrderSurvivesPacketLoss) {
  net::NetworkConfig ncfg;
  ncfg.loss_probability = 0.05;
  Cluster c(4, ncfg);
  c.start_all();
  ASSERT_TRUE(c.converge(2'000'000));
  for (int i = 0; i < 50; ++i) {
    for (std::uint32_t n = 0; n < 4; ++n) {
      c.nodes[n]->multicast(msg("n" + std::to_string(n) + "." + std::to_string(i)));
    }
  }
  c.sim.run_for(5'000'000);
  // All four must deliver the same sequence; retransmissions fill the gaps.
  EXPECT_GE(c.delivered[0].size(), 200u);
  for (std::uint32_t i = 1; i < 4; ++i) {
    EXPECT_EQ(c.delivered[i], c.delivered[0]);
  }
}

TEST(TotemLossTest, RetransmissionsActuallyHappen) {
  net::NetworkConfig ncfg;
  ncfg.loss_probability = 0.10;
  Cluster c(3, ncfg);
  c.start_all();
  ASSERT_TRUE(c.converge(2'000'000));
  for (int i = 0; i < 100; ++i) c.nodes[0]->multicast(msg("x" + std::to_string(i)));
  c.sim.run_for(5'000'000);
  std::uint64_t retrans = 0, token_retrans = 0;
  for (auto& n : c.nodes) {
    retrans += n->stats().msgs_retransmitted;
    token_retrans += n->stats().token_retransmissions;
  }
  EXPECT_GT(retrans + token_retrans, 0u);
  EXPECT_EQ(c.delivered[1], c.delivered[0]);
}

TEST(TotemMembershipTest, CrashShrinksTheRing) {
  Cluster c(4);
  c.start_all();
  ASSERT_TRUE(c.converge());
  c.nodes[3]->crash();
  c.net.set_down(NodeId{3}, true);
  ASSERT_TRUE(c.converge(1'000'000));
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.nodes[i]->view().members.size(), 3u);
    EXPECT_TRUE(c.nodes[i]->view().primary);  // 3 of 4 is a majority
  }
}

TEST(TotemMembershipTest, LeaderCrashElectsNewRing) {
  Cluster c(4);
  c.start_all();
  ASSERT_TRUE(c.converge());
  c.nodes[0]->crash();
  ASSERT_TRUE(c.converge(1'000'000));
  for (std::uint32_t i = 1; i < 4; ++i) {
    EXPECT_EQ(c.nodes[i]->view().members.front(), NodeId{1});
    EXPECT_EQ(c.nodes[i]->view().members.size(), 3u);
  }
}

TEST(TotemMembershipTest, MessagesFlowAfterMembershipChange) {
  Cluster c(4);
  c.start_all();
  ASSERT_TRUE(c.converge());
  c.nodes[2]->crash();
  ASSERT_TRUE(c.converge(1'000'000));
  c.nodes[0]->multicast(msg("after-crash"));
  c.sim.run_for(100'000);
  for (std::uint32_t i : {0u, 1u, 3u}) {
    ASSERT_FALSE(c.delivered[i].empty());
    EXPECT_EQ(c.delivered[i].back(), "after-crash");
  }
}

TEST(TotemMembershipTest, RestartedNodeRejoins) {
  Cluster c(3);
  c.start_all();
  ASSERT_TRUE(c.converge());
  c.nodes[1]->crash();
  ASSERT_TRUE(c.converge(1'000'000));
  c.nodes[1]->restart();
  ASSERT_TRUE(c.converge(1'000'000));
  for (auto& n : c.nodes) {
    EXPECT_EQ(n->view().members.size(), 3u);
  }
}

TEST(TotemMembershipTest, RejoinedNodeReceivesNewTraffic) {
  Cluster c(3);
  c.start_all();
  ASSERT_TRUE(c.converge());
  c.nodes[2]->crash();
  ASSERT_TRUE(c.converge(1'000'000));
  c.nodes[2]->restart();
  ASSERT_TRUE(c.converge(1'000'000));
  c.nodes[0]->multicast(msg("welcome-back"));
  c.sim.run_for(100'000);
  ASSERT_FALSE(c.delivered[2].empty());
  EXPECT_EQ(c.delivered[2].back(), "welcome-back");
}

TEST(TotemMembershipTest, ViewChangeCallbacksFire) {
  Cluster c(3);
  c.start_all();
  ASSERT_TRUE(c.converge());
  const auto before = c.views[0].size();
  c.nodes[1]->crash();
  ASSERT_TRUE(c.converge(1'000'000));
  EXPECT_GT(c.views[0].size(), before);
  EXPECT_EQ(c.views[0].back().members.size(), 2u);
}

TEST(TotemPartitionTest, MinorityComponentIsNotPrimary) {
  Cluster c(5);
  c.start_all();
  ASSERT_TRUE(c.converge());
  // 2-node minority vs 3-node majority.
  c.net.partition({{NodeId{0}, NodeId{1}}, {NodeId{2}, NodeId{3}, NodeId{4}}});
  c.sim.run_for(1'000'000);
  // Majority side: operational + primary.
  for (std::uint32_t i : {2u, 3u, 4u}) {
    EXPECT_EQ(c.nodes[i]->state(), TotemNode::State::kOperational) << i;
    EXPECT_TRUE(c.nodes[i]->view().primary) << i;
    EXPECT_EQ(c.nodes[i]->view().members.size(), 3u);
  }
  // Minority side: forms a ring but is not primary.
  for (std::uint32_t i : {0u, 1u}) {
    if (c.nodes[i]->state() == TotemNode::State::kOperational) {
      EXPECT_FALSE(c.nodes[i]->view().primary) << i;
    }
  }
}

TEST(TotemPartitionTest, MinorityCannotMulticast) {
  Cluster c(5);
  c.start_all();
  ASSERT_TRUE(c.converge());
  c.net.partition({{NodeId{0}, NodeId{1}}, {NodeId{2}, NodeId{3}, NodeId{4}}});
  c.sim.run_for(1'000'000);
  const auto delivered_before = c.delivered[0].size();
  c.nodes[0]->multicast(msg("stuck"));
  c.sim.run_for(500'000);
  // The message stays queued: a non-primary component must not deliver new
  // messages (primary-component model, paper Section 2).
  EXPECT_EQ(c.delivered[0].size(), delivered_before);
  EXPECT_GE(c.nodes[0]->queued(), 1u);
}

TEST(TotemPartitionTest, HealMergesAndFlushesQueuedMessages) {
  Cluster c(5);
  c.start_all();
  ASSERT_TRUE(c.converge());
  c.net.partition({{NodeId{0}, NodeId{1}}, {NodeId{2}, NodeId{3}, NodeId{4}}});
  c.sim.run_for(1'000'000);
  c.nodes[0]->multicast(msg("queued-in-minority"));
  c.nodes[2]->multicast(msg("sent-in-majority"));
  c.sim.run_for(500'000);
  c.net.heal();
  // Traffic from the majority ring is "foreign" to the minority and
  // triggers the merge.
  c.nodes[2]->multicast(msg("post-heal"));
  ASSERT_TRUE(c.converge(3'000'000));
  c.sim.run_for(1'000'000);
  // After the merge the queued minority message finally flows to everyone.
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(c.delivered[i].empty()) << i;
    bool saw = false;
    for (const auto& s : c.delivered[i]) saw |= (s == "queued-in-minority");
    EXPECT_TRUE(saw) << "node " << i << " missed the queued minority message";
  }
}

TEST(TotemPartitionTest, HealedPartitionMergesWithoutAnyTraffic) {
  // Regression: merging used to require application traffic to expose the
  // foreign ring; the minority's periodic seek-Join now does it alone.
  Cluster c(5);
  c.start_all();
  ASSERT_TRUE(c.converge());
  c.net.partition({{NodeId{0}, NodeId{1}}, {NodeId{2}, NodeId{3}, NodeId{4}}});
  c.sim.run_for(1'000'000);
  c.net.heal();
  // Nobody multicasts anything; the merge must still happen.
  ASSERT_TRUE(c.converge(3'000'000));
  for (auto& n : c.nodes) {
    EXPECT_EQ(n->view().members.size(), 5u);
    EXPECT_TRUE(n->view().primary);
  }
}

TEST(TotemCancelTest, QueuedMessageCanBeCancelled) {
  Cluster c(3);
  // Don't start: the queue drains only on token visits, so messages stay
  // queued while the ring forms.
  auto h = c.nodes[0]->multicast(msg("never"));
  EXPECT_TRUE(c.nodes[0]->cancel(h));
  c.start_all();
  ASSERT_TRUE(c.converge());
  c.sim.run_for(200'000);
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_TRUE(c.delivered[i].empty());
}

TEST(TotemCancelTest, CancelAfterSendFails) {
  Cluster c(2);
  c.start_all();
  ASSERT_TRUE(c.converge());
  auto h = c.nodes[0]->multicast(msg("sent"));
  c.sim.run_for(100'000);
  EXPECT_FALSE(c.nodes[0]->cancel(h));
  EXPECT_EQ(c.delivered[1].size(), 1u);
}

TEST(TotemCancelTest, CancelDuringATokenVisitSplitsAtTheBatchBoundary) {
  // A token visit drains the queue into one batch frame and then
  // self-delivers; a delivery callback may reenter cancel().  The batch
  // boundary is the commit point: batch-mates are already on the wire
  // (cancel fails), messages queued behind the frame are not (cancel
  // succeeds), and neither kind may be delivered twice or leak.
  totem::TotemConfig tcfg;
  tcfg.max_messages_per_token = 2;  // m0,m1 ride this visit; m2 stays queued
  Cluster c(1, {}, tcfg);
  c.start_all();
  ASSERT_TRUE(c.converge());
  auto& n = *c.nodes[0];
  std::uint64_t h1 = 0, h2 = 0;
  std::vector<std::string> got;
  bool cancelled_mate = true, cancelled_queued = false;
  n.set_deliver_handler([&](NodeId, const SharedBytes& b) {
    got.push_back(str(b));
    if (got.size() == 1) {
      cancelled_mate = n.cancel(h1);    // batch-mate: committed to the wire
      cancelled_queued = n.cancel(h2);  // behind the batch: still queued
    }
  });
  n.multicast(msg("m0"));
  h1 = n.multicast(msg("m1"));
  h2 = n.multicast(msg("m2"));
  c.sim.run_for(100'000);
  EXPECT_FALSE(cancelled_mate);
  EXPECT_TRUE(cancelled_queued);
  EXPECT_EQ(got, (std::vector<std::string>{"m0", "m1"}));
  EXPECT_EQ(n.queued(), 0u);
  EXPECT_EQ(n.stats().msgs_cancelled, 1u);
  EXPECT_EQ(n.stats().msgs_multicast, 2u);
  EXPECT_GE(n.stats().batch_frames_sent, 1u);
}

// --- Malformed-packet robustness -----------------------------------------------
//
// An attacker (or a flaky NIC) can put arbitrary datagrams on the wire; the
// envelope check must reject them before any field is parsed, and a valid
// envelope around a truncated body must fail through BytesReader's explicit
// CodecError path — never an out-of-bounds read.

// FNV-1a over data[from..), mirroring the sealed-envelope checksum so the
// tests can forge packets with a *valid* envelope but a malformed body.
std::uint32_t test_fnv1a(const Bytes& data, std::size_t from) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = from; i < data.size(); ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

Bytes forge_sealed(const Bytes& body) {
  constexpr std::uint32_t kMagic = 0x544f544d;  // "TOTM"
  Bytes packet(8 + body.size(), 0);
  std::copy(body.begin(), body.end(), packet.begin() + 8);
  store_u32le(packet.data(), kMagic);
  store_u32le(packet.data() + 4, test_fnv1a(packet, 8));
  return packet;
}

struct InjectionFixture {
  Cluster c{3};
  const NodeId injector{99};

  InjectionFixture() {
    c.start_all();
    EXPECT_TRUE(c.converge());
    c.net.attach(injector, [](NodeId, const SharedBytes&) {});
  }

  void inject(const Bytes& packet) {
    for (std::uint32_t i = 0; i < 3; ++i) c.net.send(injector, NodeId{i}, packet);
    c.sim.run_for(10'000);
  }

  /// The ring must still form, order, and deliver after the injection.
  void expect_ring_still_healthy() {
    const auto before = c.delivered[1].size();
    c.nodes[0]->multicast(msg("still-alive"));
    c.sim.run_for(100'000);
    ASSERT_EQ(c.delivered[1].size(), before + 1);
    EXPECT_EQ(c.delivered[1].back(), "still-alive");
    for (auto& n : c.nodes) EXPECT_EQ(n->state(), TotemNode::State::kOperational);
  }
};

TEST(TotemRobustnessTest, ShortPacketsAreRejected) {
  InjectionFixture f;
  f.inject(Bytes{});                    // empty datagram
  f.inject(Bytes{0x4d});                // 1 byte
  f.inject(Bytes{1, 2, 3, 4, 5, 6, 7});  // 7 bytes: one short of the envelope
  f.expect_ring_still_healthy();
}

TEST(TotemRobustnessTest, ForeignMagicIsRejected) {
  InjectionFixture f;
  Bytes junk(64, 0xab);  // plausible length, wrong magic
  f.inject(junk);
  f.expect_ring_still_healthy();
}

TEST(TotemRobustnessTest, BitFlippedPacketFailsTheChecksum) {
  InjectionFixture f;
  Bytes packet = forge_sealed(msg("payload-bytes"));
  packet.back() ^= 0x01;  // corrupt one bit of the body
  f.inject(packet);
  f.expect_ring_still_healthy();
}

TEST(TotemRobustnessTest, ValidEnvelopeTruncatedBodyIsDropped) {
  InjectionFixture f;
  // Correctly sealed packets whose bodies lie about their contents: a bare
  // mcast type byte with no fields, and an mcast whose payload length prefix
  // claims far more bytes than follow.  Both must die in CodecError, not UB.
  f.inject(forge_sealed(Bytes{2}));  // MsgType::kMcast, then nothing
  BytesWriter w;
  w.u8(2);          // kMcast
  w.u64(1);         // ring_id
  w.u64(5);         // seq
  w.u32(0);         // sender
  w.boolean(false); // recovery
  w.u8(0);          // delivery class
  w.u32(100'000);   // payload length prefix with no payload behind it
  f.inject(forge_sealed(std::move(w).take()));
  f.expect_ring_still_healthy();
}

TEST(TotemRobustnessTest, TruncatedTokenDoesNotStallTheRing) {
  InjectionFixture f;
  // A sealed token whose rtr count is huge but whose body ends immediately.
  BytesWriter w;
  w.u8(1);                // kToken
  w.u64(1);               // ring_id
  w.u64(999);             // token_seq
  w.u64(0);               // seq
  w.u64(0);               // aru
  w.u32(0);               // aru_setter
  w.u32(0);               // fcc
  w.u32(0xffffffffu);     // rtr count: lies
  f.inject(forge_sealed(std::move(w).take()));
  f.expect_ring_still_healthy();
}

TEST(TotemRobustnessTest, TrailingGarbageAfterAValidMcastIsRejected) {
  InjectionFixture f;
  const RingId ring_before = f.c.nodes[0]->view().ring_id;
  // A structurally complete mcast followed by one extra byte.  The envelope
  // checksum covers the garbage, so the seal verifies — only exact-length
  // body framing can reject it.  If the prefix were accepted, the foreign
  // ring id would send the whole cluster back into Gather.
  BytesWriter w;
  w.u8(2);           // kMcast
  w.u64(1);          // foreign ring_id
  w.u64(5);          // seq
  w.u32(9);          // sender
  w.boolean(false);  // recovery
  w.u8(0);           // kAgreed
  w.u32(3);          // payload length
  w.u8(7), w.u8(8), w.u8(9);
  w.u8(0xee);        // trailing garbage
  f.inject(forge_sealed(std::move(w).take()));
  EXPECT_EQ(f.c.nodes[0]->view().ring_id, ring_before) << "garbage packet disturbed the ring";
  f.expect_ring_still_healthy();
}

TEST(TotemRobustnessTest, TrailingGarbageAfterAValidBatchIsRejected) {
  InjectionFixture f;
  const RingId ring_before = f.c.nodes[0]->view().ring_id;
  BytesWriter w;
  w.u8(5);           // kBatch
  w.u64(1);          // foreign ring_id
  w.boolean(false);  // recovery
  w.u32(1);          // count: one entry...
  w.u64(7);          // seq
  w.u32(9);          // sender
  w.u8(0);           // kAgreed
  w.u32(2);          // payload length
  w.u8(1), w.u8(2);
  w.u8(0xee);        // ...but bytes left over after the last entry
  f.inject(forge_sealed(std::move(w).take()));
  EXPECT_EQ(f.c.nodes[0]->view().ring_id, ring_before);
  f.expect_ring_still_healthy();
}

TEST(TotemRobustnessTest, BatchCountLyingBeyondTheBodyIsRejected) {
  InjectionFixture f;
  // The frame claims two entries but carries only one: the parser must die
  // in CodecError on the missing second entry, never read past the buffer.
  BytesWriter w;
  w.u8(5);           // kBatch
  w.u64(1);          // ring_id
  w.boolean(false);  // recovery
  w.u32(2);          // count lies
  w.u64(7);          // entry 1: seq
  w.u32(9);          // sender
  w.u8(0);           // kAgreed
  w.u32(0);          // empty payload
  f.inject(forge_sealed(std::move(w).take()));
  f.expect_ring_still_healthy();
}

TEST(TotemRobustnessTest, InvalidDeliveryClassIsRejected) {
  InjectionFixture f;
  // Delivery class 7 names no guarantee; accepting it would put an
  // unclassifiable message into the store.  Both the single-message and
  // the batched encodings must reject it.
  BytesWriter m;
  m.u8(2);           // kMcast
  m.u64(1);
  m.u64(5);
  m.u32(9);
  m.boolean(false);
  m.u8(7);           // bogus delivery class
  m.u32(0);
  f.inject(forge_sealed(std::move(m).take()));
  BytesWriter b;
  b.u8(5);           // kBatch
  b.u64(1);
  b.boolean(false);
  b.u32(1);
  b.u64(7);
  b.u32(9);
  b.u8(7);           // bogus delivery class inside a batch entry
  b.u32(0);
  f.inject(forge_sealed(std::move(b).take()));
  f.expect_ring_still_healthy();
}

TEST(TotemRobustnessTest, UnknownMessageTypeIsRejected) {
  InjectionFixture f;
  BytesWriter w;
  w.u8(9);  // no such MsgType
  w.u64(1);
  f.inject(forge_sealed(std::move(w).take()));
  f.expect_ring_still_healthy();
}

TEST(TotemRobustnessTest, TrailingGarbageAfterAValidTokenIsRejected) {
  InjectionFixture f;
  const RingId ring = f.c.nodes[0]->view().ring_id;
  // A forged token for the CURRENT ring with a huge token_seq would, if
  // accepted, hijack token circulation; the trailing byte must kill it.
  BytesWriter w;
  w.u8(1);           // kToken
  w.u64(ring);
  w.u64(1u << 30);   // token_seq far ahead
  w.u64(0);          // seq
  w.u64(0);          // aru
  w.u32(0);          // aru_setter
  w.u32(0);          // fcc
  w.u32(0);          // rtr count
  w.u8(0xee);        // trailing garbage
  f.inject(forge_sealed(std::move(w).take()));
  f.expect_ring_still_healthy();
}

TEST(TotemStatsTest, TokensCirculateWhileIdle) {
  Cluster c(4);
  c.start_all();
  ASSERT_TRUE(c.converge());
  const auto before = c.nodes[1]->stats().tokens_received;
  c.sim.run_for(100'000);
  EXPECT_GT(c.nodes[1]->stats().tokens_received, before + 10);
}

TEST(TotemStatsTest, MulticastCountsMessagesOnTheWire) {
  Cluster c(3);
  c.start_all();
  ASSERT_TRUE(c.converge());
  for (int i = 0; i < 7; ++i) c.nodes[1]->multicast(msg("m"));
  c.sim.run_for(100'000);
  EXPECT_EQ(c.nodes[1]->stats().msgs_multicast, 7u);
  EXPECT_EQ(c.nodes[0]->stats().msgs_multicast, 0u);
}

TEST(TotemFlowControlTest, RotationWindowCapsAFloodingSender) {
  totem::TotemConfig tcfg;
  tcfg.max_messages_per_token = 32;  // per-visit cap alone would allow 32
  tcfg.window_per_rotation = 16;     // ...but the rotation window says 16
  Cluster c(4, {}, tcfg);
  c.start_all();
  ASSERT_TRUE(c.converge());

  // Node 0 floods 400 messages at once.
  for (int i = 0; i < 400; ++i) c.nodes[0]->multicast(msg("f" + std::to_string(i)));

  // Count deliveries at node 1 between consecutive token receipts there:
  // never more than the rotation window (plus the odd boundary effect).
  std::vector<std::size_t> per_rotation;
  std::size_t last_count = c.delivered[1].size();
  c.nodes[1]->set_token_observer([&] {
    per_rotation.push_back(c.delivered[1].size() - last_count);
    last_count = c.delivered[1].size();
  });
  c.sim.run_for(3'000'000);
  ASSERT_EQ(c.delivered[1].size(), 400u);  // everything still arrives
  std::size_t max_burst = 0;
  for (auto n : per_rotation) max_burst = std::max(max_burst, n);
  EXPECT_LE(max_burst, 17u);  // never beyond the rotation window
  // The flooder is further capped at its fair share (window/members = 4).
  EXPECT_GE(max_burst, 4u);
}

TEST(TotemFlowControlTest, WindowSharedFairlyAmongSenders) {
  totem::TotemConfig tcfg;
  tcfg.max_messages_per_token = 32;
  tcfg.window_per_rotation = 16;
  Cluster c(3, {}, tcfg);
  c.start_all();
  ASSERT_TRUE(c.converge());
  // Two nodes flood simultaneously; both must make continuous progress.
  for (int i = 0; i < 150; ++i) {
    c.nodes[0]->multicast(msg("a" + std::to_string(i)));
    c.nodes[1]->multicast(msg("b" + std::to_string(i)));
  }
  c.sim.run_for(5'000'000);
  ASSERT_EQ(c.delivered[2].size(), 300u);
  // Check interleaving: within any 64 consecutive deliveries there is at
  // least one message from each sender (no long starvation).
  const auto& d = c.delivered[2];
  for (std::size_t start = 0; start + 64 <= d.size(); start += 64) {
    bool saw_a = false, saw_b = false;
    for (std::size_t i = start; i < start + 64; ++i) {
      saw_a |= d[i][0] == 'a';
      saw_b |= d[i][0] == 'b';
    }
    EXPECT_TRUE(saw_a && saw_b) << "starvation in window starting at " << start;
  }
}

TEST(TotemDeterminismTest, IdenticalSeedsProduceIdenticalDeliveries) {
  auto run = [](std::uint64_t seed) {
    Cluster c(4, {}, {}, seed);
    c.start_all();
    c.converge();
    for (int i = 0; i < 10; ++i) {
      for (std::uint32_t n = 0; n < 4; ++n) {
        c.nodes[n]->multicast(msg(std::to_string(n) + "." + std::to_string(i)));
      }
    }
    c.sim.run_for(300'000);
    return c.delivered[2];
  };
  EXPECT_EQ(run(7), run(7));
  // And different seeds may interleave differently (jitter draws differ) —
  // but both still produce 40 messages.
  EXPECT_EQ(run(8).size(), 40u);
}

// Property sweep: total order must hold across group sizes and loss rates.
struct OrderParam {
  std::size_t nodes;
  double loss;
  std::uint64_t seed;
};

class TotemOrderProperty : public ::testing::TestWithParam<OrderParam> {};

TEST_P(TotemOrderProperty, AllNodesDeliverSameSequence) {
  const auto p = GetParam();
  net::NetworkConfig ncfg;
  ncfg.loss_probability = p.loss;
  Cluster c(p.nodes, ncfg, {}, p.seed);
  c.start_all();
  ASSERT_TRUE(c.converge(3'000'000));
  for (int i = 0; i < 20; ++i) {
    for (std::uint32_t n = 0; n < p.nodes; ++n) {
      c.nodes[n]->multicast(msg(std::to_string(n) + "/" + std::to_string(i)));
    }
  }
  c.sim.run_for(5'000'000);
  ASSERT_EQ(c.delivered[0].size(), 20u * p.nodes);
  for (std::uint32_t i = 1; i < p.nodes; ++i) {
    EXPECT_EQ(c.delivered[i], c.delivered[0]) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TotemOrderProperty,
    ::testing::Values(OrderParam{2, 0.0, 1}, OrderParam{3, 0.0, 2}, OrderParam{5, 0.0, 3},
                      OrderParam{8, 0.0, 4}, OrderParam{3, 0.02, 5}, OrderParam{4, 0.05, 6},
                      OrderParam{5, 0.02, 7}, OrderParam{4, 0.08, 8}),
    [](const ::testing::TestParamInfo<OrderParam>& param_info) {
      return "n" + std::to_string(param_info.param.nodes) + "_loss" +
             std::to_string(static_cast<int>(param_info.param.loss * 100)) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace cts::totem
