// Tests for stable storage and total-failure (cold-start) recovery — the
// extension beyond the paper's "at least one replica survives" assumption.
#include <gtest/gtest.h>

#include "app/kv_store.hpp"
#include "app/testbed.hpp"
#include "storage/stable_store.hpp"

namespace cts::app {
namespace {

bool run_until(Testbed& tb, const std::function<bool()>& pred, Micros budget) {
  const Micros deadline = tb.sim().now() + budget;
  while (tb.sim().now() < deadline) {
    tb.sim().run_until(tb.sim().now() + 10'000);
    if (pred()) return true;
  }
  return pred();
}

sim::Task drive(Testbed& tb, int n, std::vector<Micros>& stamps, bool* done = nullptr) {
  for (int i = 0; i < n; ++i) {
    co_await tb.sim().delay(1'000);
    const Bytes r = co_await tb.client().call(make_get_time_request());
    BytesReader rd(r);
    stamps.push_back(rd.i64() * 1'000'000 + rd.i64());
  }
  if (done) *done = true;
}

TestbedConfig durable_cfg(std::uint64_t seed = 1) {
  TestbedConfig cfg;
  cfg.with_stable_storage = true;
  cfg.persist_every = 5;
  cfg.seed = seed;
  return cfg;
}

// The lifecycle-scope fail-stop tripwire: no server may read its hardware
// clock while crashed (scope shutdown cancels every timer and destroys
// every suspended frame the node owned, so nothing is left to read it).
// RAII so every test exit path checks it.
struct FailStopCheck {
  Testbed& tb;
  ~FailStopCheck() {
    for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
      EXPECT_EQ(tb.clock_of(tb.server_node(s)).reads_after_failure(), 0u)
          << "server " << s << " read its clock while crashed";
    }
  }
};

// --- StableStore unit tests -----------------------------------------------------

TEST(StableStoreTest, WriteThenReadBack) {
  sim::Simulator sim;
  storage::StableStore store(sim, {}, 1);
  EXPECT_FALSE(store.read("k").has_value());
  bool synced = false;
  store.write("k", Bytes{1, 2, 3}, [&] { synced = true; });
  EXPECT_FALSE(synced);  // fsync takes time
  sim.run();
  EXPECT_TRUE(synced);
  ASSERT_TRUE(store.read("k").has_value());
  EXPECT_EQ(*store.read("k"), (Bytes{1, 2, 3}));
}

TEST(StableStoreTest, OverwriteReplacesValue) {
  sim::Simulator sim;
  storage::StableStore store(sim, {}, 1);
  store.write("k", Bytes{1});
  store.write("k", Bytes{2});
  sim.run();
  EXPECT_EQ(*store.read("k"), Bytes{2});
  EXPECT_EQ(store.writes(), 2u);
}

TEST(StableStoreTest, EraseRemovesKey) {
  sim::Simulator sim;
  storage::StableStore store(sim, {}, 1);
  store.write("k", Bytes{1});
  store.erase("k");
  EXPECT_FALSE(store.read("k").has_value());
}

TEST(StableStoreTest, FsyncLatencyIsWithinConfiguredBounds) {
  sim::Simulator sim;
  storage::StableStore::Config cfg;
  cfg.min_write_us = 100;
  cfg.max_write_us = 200;
  storage::StableStore store(sim, cfg, 7);
  for (int i = 0; i < 20; ++i) {
    const Micros t0 = sim.now();
    Micros synced_at = -1;
    store.write("k", Bytes{1}, [&] { synced_at = sim.now(); });
    sim.run();
    ASSERT_GE(synced_at, t0 + 100);
    ASSERT_LE(synced_at, t0 + 200);
  }
}

// --- Checkpoint persistence ---------------------------------------------------------

TEST(ColdStartTest, ReplicasPersistCheckpointsWhileRunning) {
  Testbed tb(durable_cfg());
  tb.start();
  FailStopCheck fail_stop{tb};
  std::vector<Micros> stamps;
  bool done = false;
  drive(tb, 30, stamps, &done);
  ASSERT_TRUE(run_until(tb, [&] { return done; }, 60'000'000));
  tb.sim().run_for(5'000'000);
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_GT(tb.server(s).stats().checkpoints_persisted, 0u) << "replica " << s;
    EXPECT_TRUE(tb.store_of(s).read("replica-checkpoint").has_value());
  }
}

// --- Total failure ---------------------------------------------------------------------

TEST(ColdStartTest, GroupClockMonotoneAcrossTotalFailure) {
  Testbed tb(durable_cfg(3));
  tb.start();
  FailStopCheck fail_stop{tb};

  std::vector<Micros> before;
  bool done1 = false;
  drive(tb, 25, before, &done1);
  ASSERT_TRUE(run_until(tb, [&] { return done1; }, 60'000'000));
  tb.sim().run_for(5'000'000);  // let the persists land

  // TOTAL failure: every replica dies.
  for (std::uint32_t s = 0; s < 3; ++s) tb.crash_server(s);
  tb.sim().run_for(5'000'000);

  // Cold restart all three from their local disks.
  for (std::uint32_t s = 0; s < 3; ++s) tb.cold_restart_server(s);
  tb.sim().run_for(2'000'000);

  std::vector<Micros> after;
  bool done2 = false;
  drive(tb, 25, after, &done2);
  ASSERT_TRUE(run_until(tb, [&] { return done2; }, 120'000'000));

  // Monotone across the outage: the persisted CTS state carries the last
  // group clock, which floors everything after the cold start.
  ASSERT_FALSE(before.empty());
  ASSERT_FALSE(after.empty());
  EXPECT_GT(after.front(), before.back())
      << "group clock rolled back across a total failure";
  for (std::size_t i = 1; i < after.size(); ++i) EXPECT_GT(after[i], after[i - 1]);
}

TEST(ColdStartTest, StateSurvivesTotalFailure) {
  Testbed tb(durable_cfg(4));
  tb.start();
  FailStopCheck fail_stop{tb};
  std::vector<Micros> stamps;
  bool done = false;
  drive(tb, 20, stamps, &done);
  ASSERT_TRUE(run_until(tb, [&] { return done; }, 60'000'000));
  tb.sim().run_for(5'000'000);
  const auto counter_before = tb.server_app(0).counter();
  ASSERT_GT(counter_before, 0u);

  for (std::uint32_t s = 0; s < 3; ++s) tb.crash_server(s);
  tb.sim().run_for(2'000'000);
  for (std::uint32_t s = 0; s < 3; ++s) tb.cold_restart_server(s);
  tb.sim().run_for(5'000'000);

  // Every replica recovered (at least) the persisted prefix, and they all
  // converged to the same state via the cold-start announcements.
  const auto h0 = tb.server_app(0).time_history();
  EXPECT_GE(tb.server_app(0).counter(), counter_before - tb.config().persist_every);
  for (std::uint32_t s = 1; s < 3; ++s) {
    EXPECT_EQ(tb.server_app(s).time_history(), h0) << "replica " << s;
  }
  // And the group continues to serve.
  std::vector<Micros> more;
  bool done2 = false;
  drive(tb, 10, more, &done2);
  ASSERT_TRUE(run_until(tb, [&] { return done2; }, 60'000'000));
}

TEST(ColdStartTest, StalestDiskCatchesUpFromFreshest) {
  Testbed tb(durable_cfg(5));
  tb.start();
  FailStopCheck fail_stop{tb};
  std::vector<Micros> stamps;
  bool done = false;
  drive(tb, 20, stamps, &done);
  ASSERT_TRUE(run_until(tb, [&] { return done; }, 60'000'000));
  tb.sim().run_for(5'000'000);

  // Make replica 2's disk artificially stale (e.g. its last persists were
  // lost): wipe it entirely.
  tb.store_of(2).erase("replica-checkpoint");

  for (std::uint32_t s = 0; s < 3; ++s) tb.crash_server(s);
  tb.sim().run_for(2'000'000);
  for (std::uint32_t s = 0; s < 3; ++s) tb.cold_restart_server(s);
  tb.sim().run_for(5'000'000);

  // Replica 2 adopted the freshest announcement despite its empty disk.
  EXPECT_EQ(tb.server_app(2).time_history(), tb.server_app(0).time_history());
  EXPECT_GT(tb.server_app(2).counter(), 0u);
}

TEST(ColdStartTest, DurableKvStoreSurvivesTotalFailureWithLeases) {
  // Stable storage + the lease KV store: writes, a long-lived lease, total
  // failure, cold start — the data, the lease, and its group-time expiry
  // all survive, and the lease is still enforced afterwards.
  TestbedConfig cfg;
  cfg.with_stable_storage = true;
  cfg.persist_every = 3;
  cfg.seed = 7;
  cfg.factory = kv_store_factory();
  Testbed tb(cfg);
  tb.start();
  FailStopCheck fail_stop{tb};

  auto call = [&](Bytes req) {
    KvReply out;
    bool done = false;
    tb.client().invoke(std::move(req), [&](const Bytes& r) {
      out = KvReply::parse(r);
      done = true;
    });
    const Micros deadline = tb.sim().now() + 60'000'000;
    while (!done && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 10'000);
    EXPECT_TRUE(done);
    return out;
  };

  ASSERT_EQ(call(kv_put("config", "v1")).status, KvStatus::kOk);
  ASSERT_EQ(call(kv_acquire("config", /*owner=*/9, /*ttl=*/120'000'000)).status, KvStatus::kOk);
  ASSERT_EQ(call(kv_put("other", "data")).status, KvStatus::kOk);
  ASSERT_EQ(call(kv_put("third", "entry")).status, KvStatus::kOk);  // triggers persist
  tb.sim().run_for(5'000'000);

  for (std::uint32_t s = 0; s < 3; ++s) tb.crash_server(s);
  tb.sim().run_for(2'000'000);
  for (std::uint32_t s = 0; s < 3; ++s) tb.cold_restart_server(s);
  tb.sim().run_for(5'000'000);

  // Data survived; the lease is STILL enforced after the cold start.
  EXPECT_EQ(call(kv_get("config")).value, "v1");
  EXPECT_EQ(call(kv_put("config", "intruder", /*owner=*/1)).status, KvStatus::kLeaseHeld);
  EXPECT_EQ(call(kv_put("config", "v2", /*owner=*/9)).status, KvStatus::kOk);

  tb.sim().run_for(2'000'000);
  auto digest = [&](std::uint32_t s) {
    return static_cast<KvStoreApp&>(tb.server(s).app()).state_digest();
  };
  EXPECT_EQ(digest(1), digest(0));
  EXPECT_EQ(digest(2), digest(0));
}

TEST(ColdStartTest, ColdStartWithEmptyDisksStillForms) {
  // No traffic before the failure: all disks empty; the group cold-starts
  // from scratch and works normally.
  Testbed tb(durable_cfg(6));
  tb.start();
  FailStopCheck fail_stop{tb};
  for (std::uint32_t s = 0; s < 3; ++s) tb.crash_server(s);
  tb.sim().run_for(2'000'000);
  for (std::uint32_t s = 0; s < 3; ++s) tb.cold_restart_server(s);
  tb.sim().run_for(2'000'000);
  std::vector<Micros> stamps;
  bool done = false;
  drive(tb, 10, stamps, &done);
  ASSERT_TRUE(run_until(tb, [&] { return done; }, 60'000'000));
  for (std::size_t i = 1; i < stamps.size(); ++i) EXPECT_GT(stamps[i], stamps[i - 1]);
}

}  // namespace
}  // namespace cts::app
