// Unit tests for the simulator's EventHeap (indexed binary heap + slot map)
// and the InlineFn callback type it stores: strict (time, seq) pop order,
// in-place cancellation from every heap position, in-place reschedule, slot
// recycling under fire/cancel churn, and a randomized differential check
// against a std::multimap oracle.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_heap.hpp"
#include "sim/inline_fn.hpp"
#include "sim/simulator.hpp"

namespace cts::sim {
namespace {

// Convenience: push an entry that appends `tag` to `order` when popped.
EventHeap::Handle push_tag(EventHeap& h, Micros t, std::uint64_t seq, std::vector<int>& order,
                           int tag) {
  return h.push(t, seq, [&order, tag] { order.push_back(tag); });
}

TEST(EventHeapTest, PopsInTimeOrder) {
  EventHeap h;
  std::vector<int> order;
  push_tag(h, 30, 0, order, 3);
  push_tag(h, 10, 1, order, 1);
  push_tag(h, 20, 2, order, 2);
  while (!h.empty()) h.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventHeapTest, EqualTimesPopInFifoSeqOrder) {
  EventHeap h;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) push_tag(h, 100, static_cast<std::uint64_t>(i), order, i);
  while (!h.empty()) h.pop().fn();
  std::vector<int> expect;
  for (int i = 0; i < 16; ++i) expect.push_back(i);
  EXPECT_EQ(order, expect);
}

TEST(EventHeapTest, CancelTopMiddleAndLast) {
  // Build a heap whose array layout we can reason about: pushing 1..7 in
  // increasing time order leaves position 0 = earliest and position n-1 =
  // one of the leaves.  Cancel the top, an interior entry, and the final
  // array element; the rest must still pop in order.
  EventHeap h;
  std::vector<int> order;
  std::vector<EventHeap::Handle> handles;
  for (int i = 1; i <= 7; ++i) {
    handles.push_back(push_tag(h, 10 * i, static_cast<std::uint64_t>(i), order, i));
  }
  EXPECT_TRUE(h.cancel(handles[0]));  // top (time 10)
  EXPECT_TRUE(h.cancel(handles[3]));  // interior (time 40)
  EXPECT_TRUE(h.cancel(handles[6]));  // last array slot (time 70)
  EXPECT_EQ(h.size(), 4u);
  while (!h.empty()) h.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 5, 6}));
}

TEST(EventHeapTest, CancelIsGenerationCheckedAfterFire) {
  EventHeap h;
  std::vector<int> order;
  const auto a = push_tag(h, 10, 0, order, 1);
  h.pop().fn();  // `a` fires
  // The slot is recycled by the next push; the stale handle must not be
  // able to cancel the new occupant.
  const auto b = push_tag(h, 20, 1, order, 2);
  EXPECT_FALSE(h.cancel(a));
  EXPECT_EQ(h.size(), 1u);
  h.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_FALSE(h.cancel(b));  // fired handles are stale too
}

TEST(EventHeapTest, CancelTwiceIsIdempotent) {
  EventHeap h;
  std::vector<int> order;
  const auto a = push_tag(h, 10, 0, order, 1);
  EXPECT_TRUE(h.cancel(a));
  EXPECT_FALSE(h.cancel(a));
  EXPECT_TRUE(h.empty());
}

TEST(EventHeapTest, DefaultHandleNeverResolves) {
  EventHeap h;
  std::vector<int> order;
  push_tag(h, 10, 0, order, 1);
  EXPECT_FALSE(h.cancel(EventHeap::Handle{}));
  EXPECT_FALSE(h.reschedule(EventHeap::Handle{}, 5, 99));
  EXPECT_EQ(h.size(), 1u);
}

TEST(EventHeapTest, RescheduleLaterKeepsCallbackAndReorders) {
  EventHeap h;
  std::vector<int> order;
  const auto a = push_tag(h, 10, 0, order, 1);
  push_tag(h, 20, 1, order, 2);
  EXPECT_TRUE(h.reschedule(a, 30, 2));  // 1 moves behind 2
  while (!h.empty()) h.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventHeapTest, RescheduleEarlierKeepsCallbackAndReorders) {
  EventHeap h;
  std::vector<int> order;
  push_tag(h, 10, 0, order, 1);
  const auto b = push_tag(h, 20, 1, order, 2);
  push_tag(h, 15, 2, order, 3);
  EXPECT_TRUE(h.reschedule(b, 5, 3));  // 2 jumps to the front
  while (!h.empty()) h.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(EventHeapTest, RescheduleStaleHandleFails) {
  EventHeap h;
  std::vector<int> order;
  const auto a = push_tag(h, 10, 0, order, 1);
  h.pop().fn();
  EXPECT_FALSE(h.reschedule(a, 20, 1));
  const auto b = push_tag(h, 20, 1, order, 2);
  EXPECT_TRUE(h.cancel(b));
  EXPECT_FALSE(h.reschedule(b, 30, 2));
}

TEST(EventHeapTest, SlotsAreRecycledUnderChurn) {
  // Fire/cancel churn far beyond the live set must not grow the slot
  // arena: its size tracks the peak number of simultaneously pending
  // events, not the total ever scheduled.
  EventHeap h;
  std::vector<int> order;
  std::uint64_t seq = 0;
  for (int round = 0; round < 10'000; ++round) {
    const auto a = push_tag(h, round, seq++, order, 0);
    const auto b = push_tag(h, round, seq++, order, 1);
    h.pop().fn();       // fire one
    h.cancel(b);        // cancel the other
    h.cancel(a);        // stale cancel-after-fire: generation-checked no-op
  }
  EXPECT_TRUE(h.empty());
  EXPECT_LE(h.slot_capacity(), 4u);
}

// Differential fuzz: random push/pop/cancel/reschedule against a
// std::multimap<(time, seq)> oracle.  The heap must agree with the oracle
// on every pop (time and identity) and on the final size.
TEST(EventHeapTest, FuzzAgainstMultimapOracle) {
  EventHeap h;
  Rng rng(20'260'807);

  struct Live {
    EventHeap::Handle handle;
    std::multimap<std::pair<Micros, std::uint64_t>, int>::iterator it;
  };
  std::multimap<std::pair<Micros, std::uint64_t>, int> oracle;  // key -> tag
  std::vector<Live> live;
  std::vector<int> popped;
  int next_tag = 0;
  std::uint64_t seq = 0;

  for (int step = 0; step < 50'000; ++step) {
    const auto op = rng.below(100);
    if (op < 45 || live.empty()) {  // push
      const Micros t = static_cast<Micros>(rng.below(1'000));
      const int tag = next_tag++;
      const auto handle = h.push(t, seq, [&popped, tag] { popped.push_back(tag); });
      live.push_back({handle, oracle.emplace(std::make_pair(t, seq), tag)});
      ++seq;
    } else if (op < 75) {  // pop
      ASSERT_FALSE(h.empty());
      ASSERT_EQ(h.size(), oracle.size());
      const auto expect = oracle.begin();
      ASSERT_EQ(h.top_time(), expect->first.first);
      auto fired = h.pop();
      fired.fn();
      ASSERT_EQ(popped.back(), expect->second);
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].it == expect) {
          live[i] = live.back();
          live.pop_back();
          break;
        }
      }
      oracle.erase(expect);
    } else if (op < 90) {  // cancel a random live entry
      const auto i = static_cast<std::size_t>(rng.below(live.size()));
      ASSERT_TRUE(h.cancel(live[i].handle));
      oracle.erase(live[i].it);
      live[i] = live.back();
      live.pop_back();
    } else {  // reschedule a random live entry
      const auto i = static_cast<std::size_t>(rng.below(live.size()));
      const Micros t = static_cast<Micros>(rng.below(1'000));
      ASSERT_TRUE(h.reschedule(live[i].handle, t, seq));
      const int tag = live[i].it->second;
      oracle.erase(live[i].it);
      live[i].it = oracle.emplace(std::make_pair(t, seq), tag);
      ++seq;
    }
  }
  // Drain: both must agree to the end.
  while (!h.empty()) {
    const auto expect = oracle.begin();
    ASSERT_EQ(h.top_time(), expect->first.first);
    h.pop().fn();
    ASSERT_EQ(popped.back(), expect->second);
    oracle.erase(expect);
  }
  EXPECT_TRUE(oracle.empty());
}

// --- InlineFn ------------------------------------------------------------------

TEST(InlineFnTest, InvokesInlineAndPooledCallables) {
  int hits = 0;
  InlineFn small = [&hits] { ++hits; };  // fits inline
  small();
  EXPECT_EQ(hits, 1);

  struct Big {
    int* hits;
    std::byte pad[128];
    void operator()() const { ++*hits; }
  };
  InlineFn big = Big{&hits, {}};  // pooled path
  big();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFnTest, MoveTransfersOwnershipOfCaptures) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  int got = 0;
  InlineFn a = [token, &got] { got = *token; };
  token.reset();
  EXPECT_FALSE(alive.expired());  // capture keeps it alive

  InlineFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): tested on purpose
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(got, 7);

  b.reset();
  EXPECT_TRUE(alive.expired());  // destruction releases the capture
}

TEST(InlineFnTest, MoveAssignDestroysPreviousCallable) {
  auto first = std::make_shared<int>(1);
  std::weak_ptr<int> first_alive = first;
  InlineFn fn = [first] { (void)first; };
  first.reset();
  EXPECT_FALSE(first_alive.expired());
  fn = InlineFn([] {});
  EXPECT_TRUE(first_alive.expired());
}

// The simulator-level regression for the historical tombstone leak:
// cancelling timers that already fired must not grow any internal state.
TEST(SimulatorChurnTest, CancelAfterFireChurnDoesNotGrow) {
  Simulator sim;
  std::uint64_t fired = 0;
  for (int round = 0; round < 100'000; ++round) {
    const auto id = sim.after(1, [&fired] { ++fired; });
    sim.run();          // timer fires; handle goes stale
    sim.cancel(id);     // historical leak: this tombstoned forever
  }
  EXPECT_EQ(fired, 100'000u);
  EXPECT_EQ(sim.pending(), 0u);
  // The slot arena tracks peak concurrency (1 here), not total scheduled.
  EXPECT_LE(sim.slot_capacity(), 2u);
}

}  // namespace
}  // namespace cts::sim
