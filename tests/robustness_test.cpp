// Robustness and fidelity tests:
//   * Totem safe delivery (two-rotation aru confirmation),
//   * GCS large-message fragmentation,
//   * fuzzed crash/restart schedules with agreement invariants,
//   * re-enactments of the paper's Figure 1 (local clocks diverge) and
//     Figure 4 (the offset arithmetic of the worked example),
//   * codec fuzzing.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "app/testbed.hpp"
#include "common/rng.hpp"
#include "gcs/gcs.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "totem/totem.hpp"

namespace cts {
namespace {

// ===========================================================================
// Totem safe delivery
// ===========================================================================

struct TotemRig {
  sim::Simulator sim{1};
  net::Network net;
  std::vector<std::unique_ptr<totem::TotemNode>> nodes;
  std::vector<std::vector<std::pair<std::string, Micros>>> delivered;  // (msg, time)

  explicit TotemRig(std::size_t n) : net(sim, {}) {
    totem::TotemConfig tcfg;
    for (std::uint32_t i = 0; i < n; ++i) tcfg.universe.push_back(NodeId{i});
    delivered.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
      nodes.back()->set_deliver_handler([this, i](NodeId, const SharedBytes& b) {
        delivered[i].emplace_back(std::string(b.begin(), b.end()), sim.now());
      });
    }
    for (auto& nd : nodes) nd->start();
    sim.run_for(100'000);
  }

  static Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }
};

TEST(SafeDeliveryTest, SafeMessageIsDelivered) {
  TotemRig rig(3);
  rig.nodes[0]->multicast(TotemRig::msg("safe1"), totem::DeliveryClass::kSafe);
  rig.sim.run_for(500'000);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_EQ(rig.delivered[i].size(), 1u) << "node " << i;
    EXPECT_EQ(rig.delivered[i][0].first, "safe1");
  }
}

TEST(SafeDeliveryTest, SafeCostsExtraTokenRotations) {
  TotemRig rig(3);
  // Measure agreed latency.
  rig.nodes[0]->multicast(TotemRig::msg("agreed"));
  const Micros t0 = rig.sim.now();
  rig.sim.run_for(500'000);
  const Micros agreed_latency = rig.delivered[1][0].second - t0;

  // Measure safe latency from the same quiescent state.
  const Micros t1 = rig.sim.now();
  rig.nodes[0]->multicast(TotemRig::msg("safe"), totem::DeliveryClass::kSafe);
  rig.sim.run_for(500'000);
  const Micros safe_latency = rig.delivered[1][1].second - t1;

  // Safe needs the aru to confirm over two further rotations.
  EXPECT_GT(safe_latency, agreed_latency + 100);
}

TEST(SafeDeliveryTest, SafeDoesNotReorderTotalOrder) {
  TotemRig rig(3);
  // Interleave safe and agreed messages from several senders.
  for (int k = 0; k < 10; ++k) {
    rig.nodes[k % 3]->multicast(TotemRig::msg("m" + std::to_string(k)),
                                k % 2 ? totem::DeliveryClass::kSafe
                                      : totem::DeliveryClass::kAgreed);
  }
  rig.sim.run_for(2'000'000);
  ASSERT_EQ(rig.delivered[0].size(), 10u);
  for (std::uint32_t i = 1; i < 3; ++i) {
    ASSERT_EQ(rig.delivered[i].size(), 10u);
    for (std::size_t k = 0; k < 10; ++k) {
      EXPECT_EQ(rig.delivered[i][k].first, rig.delivered[0][k].first)
          << "node " << i << " diverged at " << k;
    }
  }
}

TEST(SafeDeliveryTest, PendingSafeFlushedOnMembershipChange) {
  TotemRig rig(3);
  rig.nodes[0]->multicast(TotemRig::msg("pre"), totem::DeliveryClass::kSafe);
  rig.sim.run_for(500'000);
  ASSERT_EQ(rig.delivered[1].size(), 1u);

  // Queue a safe message and crash a node before the aru can confirm it
  // twice; survivors must still deliver it (transitionally) at the
  // configuration change rather than wedging the total order.
  rig.nodes[0]->multicast(TotemRig::msg("racing"), totem::DeliveryClass::kSafe);
  rig.sim.after(100, [&] { rig.nodes[2]->crash(); });
  rig.sim.run_for(3'000'000);
  bool n0 = false, n1 = false;
  for (auto& [m, t] : rig.delivered[0]) n0 |= (m == "racing");
  for (auto& [m, t] : rig.delivered[1]) n1 |= (m == "racing");
  EXPECT_TRUE(n0);
  EXPECT_TRUE(n1);
}

// ===========================================================================
// GCS fragmentation
// ===========================================================================

struct GcsRig {
  sim::Simulator sim{1};
  net::Network net;
  std::vector<std::unique_ptr<totem::TotemNode>> totems;
  std::vector<std::unique_ptr<gcs::GcsEndpoint>> eps;

  explicit GcsRig(std::size_t n) : net(sim, {}) {
    totem::TotemConfig tcfg;
    for (std::uint32_t i = 0; i < n; ++i) tcfg.universe.push_back(NodeId{i});
    for (std::uint32_t i = 0; i < n; ++i) {
      totems.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
      eps.push_back(std::make_unique<gcs::GcsEndpoint>(sim, *totems.back()));
    }
    for (auto& t : totems) t->start();
    sim.run_for(100'000);
  }
};

gcs::Message big_message(MsgSeqNum seq, std::size_t size, std::uint8_t fill) {
  gcs::Message m;
  m.hdr.type = gcs::MsgType::kState;
  m.hdr.src_grp = GroupId{1};
  m.hdr.dst_grp = GroupId{2};
  m.hdr.conn = ConnectionId{9};
  m.hdr.tag = ThreadId{0};
  m.hdr.seq = seq;
  m.hdr.sender_replica = ReplicaId{0};
  // Stage in a mutable buffer (the payload view is immutable), non-uniform
  // so reassembly order errors are detectable.
  Bytes body(size, fill);
  for (std::size_t i = 0; i < size; ++i) body[i] = static_cast<std::uint8_t>(i * 31 + fill);
  m.payload = std::move(body);
  return m;
}

TEST(FragmentationTest, LargePayloadRoundTripsIntact) {
  GcsRig rig(2);
  std::vector<gcs::Message> got;
  rig.eps[1]->subscribe(GroupId{2}, [&](const gcs::Message& m) { got.push_back(m); });
  const auto original = big_message(1, 100'000, 7);  // ~72 fragments
  rig.eps[0]->send(original);
  rig.sim.run_for(5'000'000);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].hdr.type, gcs::MsgType::kState);
  EXPECT_EQ(got[0].hdr.seq, 1u);
  EXPECT_EQ(got[0].payload, original.payload);
  EXPECT_GT(rig.eps[0]->stats().fragments_sent, 60u);
  EXPECT_GT(rig.eps[1]->stats().fragments_received, 60u);
}

TEST(FragmentationTest, SmallPayloadIsNotFragmented) {
  GcsRig rig(2);
  rig.eps[0]->send(big_message(1, 100, 3));
  rig.sim.run_for(1'000'000);
  EXPECT_EQ(rig.eps[0]->stats().fragments_sent, 0u);
}

TEST(FragmentationTest, InterleavedLargeMessagesFromDifferentSenders) {
  GcsRig rig(3);
  std::vector<gcs::Message> got;
  rig.eps[2]->subscribe(GroupId{2}, [&](const gcs::Message& m) { got.push_back(m); });
  auto m0 = big_message(1, 40'000, 1);
  auto m1 = big_message(2, 40'000, 2);
  m1.hdr.conn = ConnectionId{10};  // distinct stream
  rig.eps[0]->send(m0);
  rig.eps[1]->send(m1);
  rig.sim.run_for(10'000'000);
  ASSERT_EQ(got.size(), 2u);
  // Each reassembled intact, regardless of interleaving on the ring.
  for (const auto& m : got) {
    if (m.hdr.conn == ConnectionId{9}) {
      EXPECT_EQ(m.payload, m0.payload);
    }
    if (m.hdr.conn == ConnectionId{10}) {
      EXPECT_EQ(m.payload, m1.payload);
    }
  }
}

TEST(FragmentationTest, DuplicateLargeMessageSuppressed) {
  GcsRig rig(3);
  int deliveries = 0;
  rig.eps[2]->subscribe(GroupId{2}, [&](const gcs::Message&) { ++deliveries; });
  // Two "replicas" send the same logical large message.
  auto a = big_message(5, 30'000, 9);
  auto b = big_message(5, 30'000, 9);
  rig.eps[0]->send(a);
  rig.eps[1]->send(b);
  rig.sim.run_for(10'000'000);
  EXPECT_EQ(deliveries, 1);
}

TEST(FragmentationTest, RecoveryWithLargeCheckpointWorks) {
  // Enough history that the checkpoint spans many fragments.
  app::TestbedConfig cfg;
  app::Testbed tb(cfg);
  tb.start();
  bool burst_done = false;
  tb.client().invoke(app::make_burst_request(2'000), [&](const Bytes&) { burst_done = true; });
  while (!burst_done) tb.sim().run_until(tb.sim().now() + 1'000'000);

  tb.crash_server(2);
  tb.sim().run_for(2'000'000);
  bool recovered = false;
  tb.restart_server(2, [&] { recovered = true; });
  const Micros deadline = tb.sim().now() + 300'000'000;
  while (!recovered && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 10'000);
  ASSERT_TRUE(recovered);
  tb.sim().run_for(2'000'000);
  // The 2000-reading history (~16KB checkpoint) arrived intact.
  EXPECT_EQ(tb.server_app(2).time_history(), tb.server_app(0).time_history());
  EXPECT_GT(tb.gcs_of(tb.server_node(0)).stats().fragments_sent +
                tb.gcs_of(tb.server_node(1)).stats().fragments_sent,
            0u);
  // Fail-stop tripwire: the crashed replica never read its clock while dead.
  EXPECT_EQ(tb.clock_of(tb.server_node(2)).reads_after_failure(), 0u);
}

// ===========================================================================
// Fuzzed fault schedules
// ===========================================================================

struct FuzzParam {
  std::uint64_t seed;
};

class TotemFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(TotemFuzz, NeverCrashedNodesAgreeUnderRandomFaults) {
  const auto seed = GetParam().seed;
  Rng fuzz(seed);
  constexpr std::size_t kNodes = 5;

  sim::Simulator sim(seed);
  net::NetworkConfig ncfg;
  ncfg.loss_probability = 0.01;
  net::Network net(sim, ncfg);
  totem::TotemConfig tcfg;
  for (std::uint32_t i = 0; i < kNodes; ++i) tcfg.universe.push_back(NodeId{i});

  std::vector<std::unique_ptr<totem::TotemNode>> nodes;
  std::vector<std::vector<std::string>> delivered(kNodes);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
    nodes.back()->set_deliver_handler([&delivered, i](NodeId, const SharedBytes& b) {
      delivered[i].push_back(std::string(b.begin(), b.end()));
    });
  }
  for (auto& n : nodes) n->start();
  sim.run_for(100'000);

  // Nodes 0 and 1 never crash; 2..4 crash and restart at random times.
  int sent = 0;
  for (int step = 0; step < 60; ++step) {
    sim.run_for(fuzz.range(1'000, 40'000));
    const auto dice = fuzz.below(10);
    if (dice < 2) {
      // Crash a random crashable node that is up.
      const auto victim = 2 + fuzz.below(3);
      if (nodes[victim]->state() != totem::TotemNode::State::kDown) {
        nodes[victim]->crash();
      }
    } else if (dice < 4) {
      const auto victim = 2 + fuzz.below(3);
      if (nodes[victim]->state() == totem::TotemNode::State::kDown) {
        nodes[victim]->restart();
      }
    } else {
      // Multicast from a random live stable node.
      const auto s = fuzz.below(2);
      const std::string body = "m" + std::to_string(sent++);
      nodes[s]->multicast(Bytes(body.begin(), body.end()));
    }
  }
  // Bring everyone back and let the system settle.
  for (std::uint32_t i = 2; i < kNodes; ++i) {
    if (nodes[i]->state() == totem::TotemNode::State::kDown) nodes[i]->restart();
  }
  sim.run_for(30'000'000);

  // Invariant: nodes that never crashed delivered identical sequences.
  EXPECT_EQ(delivered[0], delivered[1]) << "seed " << seed;
  // Invariant: nothing was delivered twice at a stable node.
  std::set<std::string> uniq(delivered[0].begin(), delivered[0].end());
  EXPECT_EQ(uniq.size(), delivered[0].size()) << "seed " << seed;
  // Invariant: everything a stable node sent was eventually delivered
  // (stable nodes were always in the primary component).
  EXPECT_EQ(delivered[0].size(), static_cast<std::size_t>(sent)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TotemFuzz,
                         ::testing::Values(FuzzParam{101}, FuzzParam{102}, FuzzParam{103},
                                           FuzzParam{104}, FuzzParam{105}, FuzzParam{106},
                                           FuzzParam{107}, FuzzParam{108}),
                         [](const ::testing::TestParamInfo<FuzzParam>& i) {
                           return "seed" + std::to_string(i.param.seed);
                         });

// ===========================================================================
// Figure 1 & Figure 4 re-enactments
// ===========================================================================

TEST(PaperFigureTest, Figure1LocalClocksDivergeReplicaState) {
  // Figure 1 / Section 4.2: without the consistent time service, "replica
  // consistency of the server for this operation cannot be guaranteed".
  app::TestbedConfig cfg;
  cfg.factory = app::local_time_server_factory();
  cfg.max_clock_offset_us = 300'000;
  app::Testbed tb(cfg);
  tb.start();
  bool done = false;
  tb.client().invoke(app::make_burst_request(50), [&](const Bytes&) { done = true; });
  while (!done) tb.sim().run_until(tb.sim().now() + 1'000'000);
  tb.sim().run_for(2'000'000);

  auto& a0 = static_cast<app::LocalTimeServerApp&>(tb.server(0).app());
  auto& a1 = static_cast<app::LocalTimeServerApp&>(tb.server(1).app());
  ASSERT_EQ(a0.time_history().size(), 50u);
  ASSERT_EQ(a1.time_history().size(), 50u);
  // The histories MUST diverge: different hardware clocks, different
  // processing times.
  EXPECT_NE(a0.time_history(), a1.time_history());
}

TEST(PaperFigureTest, Figure4OffsetArithmetic) {
  // The worked example of Section 3.4: after every round, each replica's
  // offset equals (group clock − its own physical reading), and the next
  // winner's proposal equals its physical reading plus that offset.
  app::TestbedConfig cfg;
  cfg.servers = 3;
  cfg.seed = 4;
  app::Testbed tb(cfg);

  struct Obs {
    std::vector<ccs::RoundResult> rounds;
  };
  std::vector<Obs> obs(3);
  for (std::uint32_t s = 0; s < 3; ++s) {
    tb.server(s).time_service().set_round_observer(
        [&obs, s](const ccs::RoundResult& rr) { obs[s].rounds.push_back(rr); });
  }
  tb.start();
  bool done = false;
  tb.client().invoke(app::make_burst_request(30), [&](const Bytes&) { done = true; });
  while (!done) tb.sim().run_until(tb.sim().now() + 1'000'000);
  tb.sim().run_for(2'000'000);

  for (std::uint32_t s = 0; s < 3; ++s) {
    ASSERT_EQ(obs[s].rounds.size(), 30u);
    for (std::size_t k = 0; k < 30; ++k) {
      const auto& rr = obs[s].rounds[k];
      // offset = gc − pc (Figure 2 line 7; re-derived every round).
      EXPECT_EQ(rr.offset_after, rr.group_clock - rr.physical_clock);
      // All replicas agree on the round's group clock and winner.
      EXPECT_EQ(rr.group_clock, obs[0].rounds[k].group_clock);
      EXPECT_EQ(rr.winner_replica, obs[0].rounds[k].winner_replica);
    }
    // Winner validity: when this replica won, the group value is exactly
    // its proposal pc + previous offset.
    for (std::size_t k = 1; k < 30; ++k) {
      const auto& rr = obs[s].rounds[k];
      if (rr.winner_replica == ReplicaId{s} && rr.i_sent) {
        const auto& prev = obs[s].rounds[k - 1];
        EXPECT_EQ(rr.group_clock, rr.physical_clock + prev.offset_after);
      }
    }
  }
}

// ===========================================================================
// Codec fuzzing
// ===========================================================================

TEST(CodecFuzzTest, RandomHeadersRoundTrip) {
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    gcs::Message m;
    m.hdr.type = static_cast<gcs::MsgType>(1 + rng.below(8));
    m.hdr.src_grp = GroupId{static_cast<std::uint32_t>(rng.next())};
    m.hdr.dst_grp = GroupId{static_cast<std::uint32_t>(rng.next())};
    m.hdr.conn = ConnectionId{static_cast<std::uint32_t>(rng.next())};
    m.hdr.tag = ThreadId{static_cast<std::uint32_t>(rng.next())};
    m.hdr.seq = rng.next();
    m.hdr.sender_replica = ReplicaId{static_cast<std::uint32_t>(rng.next())};
    m.hdr.sender_node = NodeId{static_cast<std::uint32_t>(rng.next())};
    Bytes body(rng.below(200));
    for (auto& b : body) b = static_cast<std::uint8_t>(rng.next());
    m.payload = std::move(body);

    const auto d = gcs::GcsEndpoint::decode(gcs::GcsEndpoint::encode(m));
    EXPECT_EQ(d.hdr.seq, m.hdr.seq);
    EXPECT_EQ(d.hdr.conn, m.hdr.conn);
    EXPECT_EQ(d.payload, m.payload);
  }
}

TEST(CodecFuzzTest, RandomGarbageNeverCrashesDecode) {
  Rng rng(77);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 2000; ++i) {
    Bytes junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    try {
      (void)gcs::GcsEndpoint::decode(junk);
      ++parsed;
    } catch (const CodecError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(parsed + rejected, 2000);
}

TEST(CodecFuzzTest, GarbagePacketsDoNotCrashTheProtocolStack) {
  GcsRig rig(2);
  Rng rng(55);
  // Inject raw garbage straight into the network, addressed at node 1.
  for (int i = 0; i < 200; ++i) {
    Bytes junk(1 + rng.below(40));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    rig.net.send(NodeId{0}, NodeId{1}, junk);
  }
  rig.sim.run_for(1'000'000);
  // The stack survives and still works.
  std::vector<gcs::Message> got;
  rig.eps[1]->subscribe(GroupId{2}, [&](const gcs::Message& m) { got.push_back(m); });
  rig.eps[0]->send(big_message(1, 100, 1));
  rig.sim.run_for(1'000'000);
  EXPECT_EQ(got.size(), 1u);
}

}  // namespace
}  // namespace cts
