// Crash-sweep: fail-stop semantics must hold no matter WHEN a node dies.
//
// The lifecycle-scope work makes a strong claim: after crash_server(s),
// nothing the dead node scheduled — timers, packet deliveries, suspended
// coroutine frames — ever executes again.  A single crash test exercises
// one interleaving; this sweep crashes each server at every event index
// inside a window, so the crash lands on every kind of pending work the
// node can have in flight (token timers mid-round, CTS rounds awaiting
// their CCS message, GET_STATE retries, RMI replies in the network).
//
// For every (server, event index) pair we assert the two observable
// fail-stop properties:
//   1. reads_after_failure() == 0 — the dead node never consults its
//      clock again (the tripwire in PhysicalClock::read counts this);
//   2. the dead node's Totem statistics are frozen at their crash-time
//      values — it neither sends nor receives another protocol message.
//
// A second pass re-runs a slice of the sweep with the same seed and
// asserts the recorded traces are byte-identical: crash schedules replay
// exactly, which is what makes a crash reproducible from (seed, index).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "app/testbed.hpp"

namespace cts::app {
namespace {

using replication::ReplicationStyle;

// Everything observable about one (server, event-index) crash run.
// Compared with == for the seed-stability double-run.
struct CrashTrace {
  Micros crash_time = 0;
  std::uint64_t reads_after_failure = 0;
  totem::TotemStats at_crash;
  totem::TotemStats at_end;
  std::vector<Micros> stamps;  // client replies observed after the crash
  std::uint64_t timers_cancelled = 0;
  std::uint64_t frames_destroyed = 0;

  friend bool operator==(const CrashTrace&, const CrashTrace&) = default;
};

// Run the standard testbed workload, crash server `victim` exactly
// `event_index` simulator events after warmup, then run a tail and record
// what the dead node did (it had better be: nothing).
CrashTrace run_crash_at(std::uint64_t seed, ReplicationStyle style, std::uint32_t victim,
                        int event_index) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.style = style;
  Testbed tb(cfg);
  tb.start();

  std::vector<Micros> stamps;
  auto driver = [&]() -> sim::Task {
    for (int i = 0; i < 60; ++i) {
      co_await tb.sim().delay(900);
      const Bytes r = co_await tb.client().call(make_get_time_request());
      BytesReader rd(r);
      stamps.push_back(rd.i64() * 1'000'000 + rd.i64());
    }
  };
  driver();

  // Land the crash on the event-index grid, not the time grid: step the
  // simulator one event at a time so consecutive sweep points interleave
  // the crash with consecutive pieces of pending work.
  for (int i = 0; i < event_index; ++i) {
    if (!tb.sim().step()) break;
  }

  CrashTrace t;
  t.crash_time = tb.sim().now();
  tb.crash_server(victim);

  const auto node = tb.server_node(victim);
  t.at_crash = tb.totem_of(node).stats();
  t.timers_cancelled = tb.scope_of(node).timers_cancelled_on_shutdown();
  t.frames_destroyed = tb.scope_of(node).frames_destroyed_on_shutdown();

  // Long enough for the survivors to reform the ring, re-run CCS rounds
  // and keep serving the client — plenty of opportunity for any stray
  // event owned by the dead node to fire.
  tb.sim().run_for(8'000'000);

  t.reads_after_failure = tb.clock_of(node).reads_after_failure();
  t.at_end = tb.totem_of(node).stats();
  t.stamps = std::move(stamps);
  return t;
}

void expect_frozen(const CrashTrace& t, std::uint32_t victim, int idx) {
  SCOPED_TRACE("victim=" + std::to_string(victim) + " event_index=" + std::to_string(idx) +
               " crash_time=" + std::to_string(t.crash_time));
  // Property 1: the fail-stop tripwire never fired.
  EXPECT_EQ(t.reads_after_failure, 0u);
  // Property 2: the dead node's protocol stack went silent — every Totem
  // counter is frozen at its crash-time value.
  EXPECT_EQ(t.at_end.tokens_sent, t.at_crash.tokens_sent);
  EXPECT_EQ(t.at_end.tokens_received, t.at_crash.tokens_received);
  EXPECT_EQ(t.at_end.token_retransmissions, t.at_crash.token_retransmissions);
  EXPECT_EQ(t.at_end.msgs_multicast, t.at_crash.msgs_multicast);
  EXPECT_EQ(t.at_end.msgs_retransmitted, t.at_crash.msgs_retransmitted);
  EXPECT_EQ(t.at_end.msgs_delivered, t.at_crash.msgs_delivered);
  EXPECT_EQ(t.at_end.membership_changes, t.at_crash.membership_changes);
}

// The main sweep: each server, every event index in the window.  The
// window starts right after start()'s settle period, where the ring is
// established and the client is mid-stream — the densest mix of pending
// work (token rotation, CCS rounds, request processing).
TEST(CrashSweepTest, EveryServerEveryEventIndexInWindow) {
  constexpr int kWindow = 24;
  for (std::uint32_t victim = 0; victim < 3; ++victim) {
    for (int idx = 0; idx < kWindow; ++idx) {
      const CrashTrace t = run_crash_at(101, ReplicationStyle::kActive, victim, idx);
      expect_frozen(t, victim, idx);
      // The scope actually had work to kill: a live Totem node always has
      // at least its token-loss/heartbeat timers pending.
      EXPECT_GT(t.timers_cancelled, 0u);
    }
  }
}

// Crashes interact differently with semi-active replication (the primary
// drives timestamps); sweep a narrower window there too.
TEST(CrashSweepTest, SemiActiveWindow) {
  constexpr int kWindow = 12;
  for (std::uint32_t victim = 0; victim < 3; ++victim) {
    for (int idx = 0; idx < kWindow; ++idx) {
      const CrashTrace t = run_crash_at(102, ReplicationStyle::kSemiActive, victim, idx);
      expect_frozen(t, victim, idx);
    }
  }
}

// Seed stability: the same (seed, victim, event index) must reproduce the
// same crash — same crash time, same frozen counters, same client-visible
// reply stream, same shutdown bookkeeping.  Byte-identical traces mean a
// crash found by the sweep can be replayed exactly from its coordinates.
TEST(CrashSweepTest, SweepScheduleIsSeedStableAcrossRuns) {
  for (int idx : {0, 3, 7, 11, 16}) {
    const CrashTrace a = run_crash_at(103, ReplicationStyle::kActive, 1, idx);
    const CrashTrace b = run_crash_at(103, ReplicationStyle::kActive, 1, idx);
    SCOPED_TRACE("event_index=" + std::to_string(idx));
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.reads_after_failure, 0u);
  }
}

// Crash-then-restart at swept indices: recovery must not resurrect any of
// the pre-crash node's work.  The tripwire counts reads between fail()
// and restart(); the restarted incarnation legitimately reads its clock,
// so assert the counter taken at restart time stays zero for good.
TEST(CrashSweepTest, RestartAfterSweptCrashKeepsTripwireClean) {
  for (int idx : {2, 9, 17}) {
    TestbedConfig cfg;
    cfg.seed = 104;
    Testbed tb(cfg);
    tb.start();

    std::vector<Bytes> replies;
    auto driver = [&]() -> sim::Task {
      for (int i = 0; i < 40; ++i) {
        co_await tb.sim().delay(900);
        replies.push_back(co_await tb.client().call(make_get_time_request()));
      }
    };
    driver();

    for (int i = 0; i < idx; ++i) tb.sim().step();
    tb.crash_server(1);
    const auto node = tb.server_node(1);
    tb.sim().run_for(4'000'000);
    EXPECT_EQ(tb.clock_of(node).reads_after_failure(), 0u);

    bool recovered = false;
    tb.restart_server(1, [&] { recovered = true; });
    const Micros deadline = tb.sim().now() + 60'000'000;
    while (!recovered && tb.sim().now() < deadline) {
      tb.sim().run_until(tb.sim().now() + 100'000);
    }
    SCOPED_TRACE("event_index=" + std::to_string(idx));
    EXPECT_TRUE(recovered);
    // The dead interval stays clean even after the node lives again.
    EXPECT_EQ(tb.clock_of(node).reads_after_failure(), 0u);
    EXPECT_TRUE(tb.server(1).recovered());
  }
}

}  // namespace
}  // namespace cts::app
