// Unit tests for the physical clock model: drift, granularity, offsets,
// fail-stop semantics, and the NTP/GPS-like reference source.
#include <gtest/gtest.h>

#include "clock/physical_clock.hpp"
#include "sim/simulator.hpp"

namespace cts::clock {
namespace {

constexpr Micros kEpoch = 1056326400LL * 1000000LL;

ClockConfig ideal() {
  ClockConfig cfg;
  cfg.initial_offset_us = 0;
  cfg.drift_ppm = 0.0;
  cfg.granularity_us = 1;
  return cfg;
}

TEST(PhysicalClockTest, IdealClockTracksSimTime) {
  sim::Simulator sim;
  PhysicalClock c(sim, ideal());
  EXPECT_EQ(c.read(), kEpoch);
  sim.run_until(1'000'000);
  EXPECT_EQ(c.read(), kEpoch + 1'000'000);
}

TEST(PhysicalClockTest, InitialOffsetShiftsReadings) {
  sim::Simulator sim;
  auto cfg = ideal();
  cfg.initial_offset_us = 250'000;
  PhysicalClock c(sim, cfg);
  EXPECT_EQ(c.read(), kEpoch + 250'000);
}

TEST(PhysicalClockTest, PositiveDriftGainsMicrosecondsPerSecond) {
  sim::Simulator sim;
  auto cfg = ideal();
  cfg.drift_ppm = 20.0;  // gains 20us per second
  PhysicalClock c(sim, cfg);
  sim.run_until(10'000'000);  // 10 s
  EXPECT_EQ(c.read(), kEpoch + 10'000'000 + 200);
}

TEST(PhysicalClockTest, NegativeDriftLosesTime) {
  sim::Simulator sim;
  auto cfg = ideal();
  cfg.drift_ppm = -50.0;
  PhysicalClock c(sim, cfg);
  sim.run_until(1'000'000);
  EXPECT_EQ(c.read(), kEpoch + 1'000'000 - 50);
}

TEST(PhysicalClockTest, GranularityQuantizesReadings) {
  sim::Simulator sim;
  auto cfg = ideal();
  cfg.granularity_us = 10'000;  // 10ms ticks, like a coarse OS timer
  PhysicalClock c(sim, cfg);
  sim.run_until(123'456);
  EXPECT_EQ(c.read() % 10'000, 0);
  EXPECT_LE(kEpoch + 120'000, c.read());
  EXPECT_LE(c.read(), kEpoch + 123'456);
}

TEST(PhysicalClockTest, ReadingsAreMonotoneUnderForwardTime) {
  sim::Simulator sim;
  Rng rng(2);
  auto cfg = random_clock_config(rng);
  PhysicalClock c(sim, cfg);
  Micros prev = c.read();
  for (int i = 0; i < 100; ++i) {
    sim.run_until(sim.now() + 1000);
    Micros v = c.read();
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(PhysicalClockTest, NormalizedFirstReadingIsZero) {
  sim::Simulator sim;
  auto cfg = ideal();
  cfg.initial_offset_us = 12345;
  PhysicalClock c(sim, cfg);
  sim.run_until(500);
  EXPECT_EQ(c.read_normalized(), 0);
  sim.run_until(1500);
  EXPECT_EQ(c.read_normalized(), 1000);
}

TEST(PhysicalClockTest, ReadAfterFailIsCountedNotFatal) {
  // Fail-stop violations (a crashed node's still-scheduled timer reading
  // its clock) are counted, not fatal, so Debug/sanitizer builds run the
  // exact schedule Release always ran.
  sim::Simulator sim;
  PhysicalClock c(sim, ideal());
  const Micros before = c.read();
  c.fail();
  EXPECT_FALSE(c.alive());
  EXPECT_EQ(c.reads_after_failure(), 0u);
  EXPECT_EQ(c.read(), before);  // same sim time, same reading as when alive
  EXPECT_EQ(c.read(), before);
  EXPECT_EQ(c.reads_after_failure(), 2u);
  c.restart(0);
  (void)c.read();  // healthy reads don't count
  EXPECT_EQ(c.reads_after_failure(), 2u);
}

TEST(PhysicalClockTest, RestartReenablesWithNewOffset) {
  sim::Simulator sim;
  PhysicalClock c(sim, ideal());
  c.fail();
  c.restart(777);
  EXPECT_TRUE(c.alive());
  EXPECT_EQ(c.read(), kEpoch + 777);
  // Normalization base resets too (a rebooted host re-baselines).
  EXPECT_EQ(c.read_normalized(), 0);
}

TEST(RandomClockConfigTest, StaysWithinRequestedBounds) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    auto cfg = random_clock_config(rng, 100'000, 30.0);
    EXPECT_LE(std::abs(cfg.initial_offset_us), 100'000);
    EXPECT_LE(std::abs(cfg.drift_ppm), 30.0);
  }
}

TEST(RandomClockConfigTest, ProducesDiverseClocks) {
  Rng rng(6);
  auto a = random_clock_config(rng);
  auto b = random_clock_config(rng);
  EXPECT_TRUE(a.initial_offset_us != b.initial_offset_us || a.drift_ppm != b.drift_ppm);
}

// --- Reference time source -------------------------------------------------------

TEST(ReferenceTimeSourceTest, TracksRealTimeWithinMaxSkew) {
  sim::Simulator sim;
  ReferenceTimeSource ref(sim, Rng(3), /*max_skew_us=*/1000);
  for (int i = 0; i < 1000; ++i) {
    sim.run_until(sim.now() + 10'000);
    const Micros err = ref.read() - (kEpoch + sim.now());
    EXPECT_LE(std::abs(err), 1000);
  }
}

TEST(ReferenceTimeSourceTest, HasNoDriftOverLongHorizons) {
  sim::Simulator sim;
  ReferenceTimeSource ref(sim, Rng(4), 500);
  sim.run_until(3600LL * 1'000'000);  // one simulated hour
  const Micros err = ref.read() - (kEpoch + sim.now());
  EXPECT_LE(std::abs(err), 500);  // bounded, unlike a drifting clock
}

}  // namespace
}  // namespace cts::clock
