// Unit tests for the common layer: strong ids, byte codec, RNG, histogram.
#include <gtest/gtest.h>

#include <set>

#include "common/bytes.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace cts {
namespace {

// --- Strong ids ---------------------------------------------------------------

TEST(TypesTest, DefaultIdsAreInvalid) {
  EXPECT_FALSE(NodeId{}.valid());
  EXPECT_FALSE(GroupId{}.valid());
  EXPECT_FALSE(ThreadId{}.valid());
}

TEST(TypesTest, ExplicitIdsAreValidAndComparable) {
  NodeId a{1}, b{2}, a2{1};
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(TypesTest, ToStringUsesTypedPrefixes) {
  EXPECT_EQ(to_string(NodeId{3}), "n3");
  EXPECT_EQ(to_string(GroupId{7}), "g7");
  EXPECT_EQ(to_string(ConnectionId{1}), "c1");
  EXPECT_EQ(to_string(ThreadId{0}), "t0");
  EXPECT_EQ(to_string(ReplicaId{2}), "r2");
}

TEST(TypesTest, IdsAreHashable) {
  std::set<NodeId> s{NodeId{1}, NodeId{2}, NodeId{1}};
  EXPECT_EQ(s.size(), 2u);
  std::hash<NodeId> h;
  EXPECT_EQ(h(NodeId{5}), h(NodeId{5}));
}

// --- Byte codec ----------------------------------------------------------------

TEST(BytesTest, RoundTripsAllScalarWidths) {
  BytesWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);

  BytesReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(BytesTest, RoundTripsStringsAndBytes) {
  BytesWriter w;
  w.str("hello world");
  Bytes blob{1, 2, 3, 255};
  w.bytes(blob);
  w.str("");

  BytesReader r(w.data());
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(BytesTest, ThrowsOnTruncatedScalar) {
  BytesWriter w;
  w.u16(7);
  BytesReader r(w.data());
  EXPECT_THROW(r.u64(), CodecError);
}

TEST(BytesTest, ThrowsOnLyingLengthPrefix) {
  BytesWriter w;
  w.u32(1000);  // claims 1000 bytes follow; none do
  BytesReader r(w.data());
  EXPECT_THROW(r.bytes(), CodecError);
}

TEST(BytesTest, ThrowsOnEmptyBuffer) {
  const Bytes empty;
  BytesReader r(empty);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u8(), CodecError);
  EXPECT_THROW(r.str(), CodecError);
}

TEST(BytesTest, HostileLengthPrefixNearMaxDoesNotWrap) {
  // A length prefix of 0xffffffff must fail the bounds check, not wrap
  // pos_ + n around SIZE_MAX and read out of bounds.
  BytesWriter w;
  w.u32(0xffffffffu);
  w.u8(1);  // one real byte behind the lying prefix
  BytesReader r(w.data());
  EXPECT_THROW(r.bytes(), CodecError);
}

TEST(BytesTest, OversizedStringPrefixThrows) {
  BytesWriter w;
  w.str("abc");
  Bytes raw = std::move(w).take();
  raw[0] = 200;  // claim 200 bytes; only 3 follow
  BytesReader r(raw);
  EXPECT_THROW(r.str(), CodecError);
}

TEST(BytesTest, TruncationErrorMentionsCounts) {
  BytesWriter w;
  w.u16(0x0201);
  BytesReader r(w.data());
  try {
    r.u64();
    FAIL() << "expected CodecError";
  } catch (const CodecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("need 8"), std::string::npos) << what;
    EXPECT_NE(what.find("have 2"), std::string::npos) << what;
  }
}

TEST(BytesTest, FailedReadLeavesReaderPositionIntact) {
  // A rejected read must not half-consume the buffer: the caller can still
  // read whatever genuinely remains.
  BytesWriter w;
  w.u16(0x1234);
  BytesReader r(w.data());
  EXPECT_THROW(r.u64(), CodecError);
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(r.u16(), 0x1234);
}

TEST(BytesTest, SkipAdvancesAndBoundsChecks) {
  BytesWriter w;
  w.u32(0xaabbccdd);
  w.u8(0x42);
  BytesReader r(w.data());
  r.skip(4);
  EXPECT_EQ(r.u8(), 0x42);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.skip(1), CodecError);
}

TEST(BytesTest, LoadStoreU32RoundTrip) {
  Bytes buf(6, 0xee);
  store_u32le(buf.data() + 1, 0x01020304u);
  EXPECT_EQ(load_u32le(buf.data() + 1), 0x01020304u);
  // Little-endian on the wire, untouched guard bytes around the field.
  EXPECT_EQ(buf[0], 0xee);
  EXPECT_EQ(buf[1], 0x04);
  EXPECT_EQ(buf[4], 0x01);
  EXPECT_EQ(buf[5], 0xee);
}

TEST(BytesTest, RemainingTracksConsumption) {
  BytesWriter w;
  w.u32(1);
  w.u32(2);
  BytesReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_TRUE(r.done());
}

// --- RNG --------------------------------------------------------------------------

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, RangeIsInclusiveAndCoversEndpoints) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.range(3, 5);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  double acc = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    acc += u;
  }
  EXPECT_NEAR(acc / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceRespectsProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, GaussianMeanAndSpread) {
  Rng rng(13);
  double acc = 0, acc2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.gaussian(10.0, 2.0);
    acc += g;
    acc2 += g * g;
  }
  const double mean = acc / n;
  const double var = acc2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.4);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double acc = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += rng.exponential(100.0);
  EXPECT_NEAR(acc / n, 100.0, 5.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  // The child must not replay the parent's stream.
  Rng a2(5);
  a2.fork();
  EXPECT_EQ(a.next(), a2.next());  // parent streams still aligned
  int same = 0;
  Rng c2 = Rng(5).fork();
  for (int i = 0; i < 64; ++i) same += (child.next() == c2.next());
  EXPECT_EQ(same, 64);  // forking is itself deterministic
}

// --- Histogram ----------------------------------------------------------------------

TEST(HistogramTest, CountMeanMinMax) {
  Histogram h(10, 1000);
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 30);
}

TEST(HistogramTest, PercentilesOnKnownData) {
  Histogram h(1, 200);
  for (Micros v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.percentile(0.0), 1);
  EXPECT_EQ(h.percentile(0.5), 50);
  EXPECT_EQ(h.percentile(1.0), 100);
}

TEST(HistogramTest, ModeBinFindsThePeak) {
  Histogram h(10, 1000);
  for (int i = 0; i < 5; ++i) h.add(500 + i);  // 5 samples in bin 500
  h.add(100);
  h.add(900);
  EXPECT_EQ(h.mode_bin(), 500);
}

TEST(HistogramTest, DensitySumsToOne) {
  Histogram h(50, 2000);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) h.add(rng.range(0, 1999));
  double total = 0;
  for (auto [_, d] : h.density()) total += d;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HistogramTest, OverflowSamplesLandInLastBin) {
  Histogram h(10, 100);
  h.add(5000);  // way past max_value
  EXPECT_EQ(h.count(), 1u);
  auto rows = h.density();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, 100);  // the overflow bin
}

TEST(HistogramTest, NegativeSamplesCountAsUnderflowNotBinZero) {
  // A negative latency is a causality bug upstream; folding it into bin 0
  // would silently distort the density, so add() diverts it to a dedicated
  // underflow stat instead.
  Histogram h(10, 100);
  h.add(-50);
  h.add(-3);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.underflow_min(), -50);
  EXPECT_TRUE(h.density().empty());

  h.add(5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);  // underflow excluded from the stats
  const auto t = h.table("skew");
  EXPECT_NE(t.find("underflow=2"), std::string::npos) << t;
}

TEST(HistogramTest, UnderflowMinIsZeroWithoutUnderflow) {
  Histogram h(10, 100);
  h.add(7);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.underflow_min(), 0);
}

TEST(HistogramTest, ModeBinIgnoresTheOverflowCatchAll) {
  // Ten samples land past max_value, five in a real bin: the overflow
  // catch-all has the most mass, but it is not a real bin and must never
  // be reported as the distribution's mode.
  Histogram h(10, 100);
  for (int i = 0; i < 10; ++i) h.add(5000);
  for (int i = 0; i < 5; ++i) h.add(42);
  EXPECT_EQ(h.mode_bin(), 40);
  EXPECT_EQ(h.overflow(), 10u);
}

TEST(HistogramTest, TableContainsSummary) {
  Histogram h(10, 100);
  h.add(42);
  auto t = h.table("latency");
  EXPECT_NE(t.find("latency"), std::string::npos);
  EXPECT_NE(t.find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace cts
