// Tests for the group communication layer: header codec, group views,
// ordered delivery, receiver-side duplicate detection, and sender-side
// duplicate suppression.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gcs/gcs.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "totem/totem.hpp"

namespace cts::gcs {
namespace {

Bytes pay(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string str(std::span<const std::uint8_t> b) { return std::string(b.begin(), b.end()); }

struct Cluster {
  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<totem::TotemNode>> totems;
  std::vector<std::unique_ptr<GcsEndpoint>> eps;

  explicit Cluster(std::size_t n, std::uint64_t seed = 1) : sim(seed), net(sim, {}) {
    totem::TotemConfig tcfg;
    for (std::uint32_t i = 0; i < n; ++i) tcfg.universe.push_back(NodeId{i});
    for (std::uint32_t i = 0; i < n; ++i) {
      totems.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
      eps.push_back(std::make_unique<GcsEndpoint>(sim, *totems.back()));
    }
  }

  void start_all() {
    for (auto& t : totems) t->start();
    // Let the ring form.
    sim.run_for(100'000);
  }
};

Message user_msg(GroupId src, GroupId dst, ConnectionId conn, MsgSeqNum seq,
                 const std::string& body, ReplicaId rep = ReplicaId{0},
                 MsgType type = MsgType::kUserRequest) {
  Message m;
  m.hdr.type = type;
  m.hdr.src_grp = src;
  m.hdr.dst_grp = dst;
  m.hdr.conn = conn;
  m.hdr.tag = ThreadId{0};
  m.hdr.seq = seq;
  m.hdr.sender_replica = rep;
  m.payload = pay(body);
  return m;
}

// --- Codec ------------------------------------------------------------------------

TEST(GcsCodecTest, HeaderRoundTrips) {
  Message m;
  m.hdr.type = MsgType::kCcs;
  m.hdr.src_grp = GroupId{3};
  m.hdr.dst_grp = GroupId{3};
  m.hdr.conn = ConnectionId{9};
  m.hdr.tag = ThreadId{2};
  m.hdr.seq = 12345;
  m.hdr.sender_replica = ReplicaId{1};
  m.hdr.sender_node = NodeId{2};
  m.payload = pay("payload");

  auto decoded = GcsEndpoint::decode(GcsEndpoint::encode(m));
  EXPECT_EQ(decoded.hdr.type, MsgType::kCcs);
  EXPECT_EQ(decoded.hdr.src_grp, GroupId{3});
  EXPECT_EQ(decoded.hdr.dst_grp, GroupId{3});
  EXPECT_EQ(decoded.hdr.conn, ConnectionId{9});
  EXPECT_EQ(decoded.hdr.tag, ThreadId{2});
  EXPECT_EQ(decoded.hdr.seq, 12345u);
  EXPECT_EQ(decoded.hdr.sender_replica, ReplicaId{1});
  EXPECT_EQ(decoded.hdr.sender_node, NodeId{2});
  EXPECT_EQ(str(decoded.payload), "payload");
}

TEST(GcsCodecTest, DecodeRejectsGarbage) {
  EXPECT_THROW(GcsEndpoint::decode(Bytes{1, 2}), CodecError);
}

TEST(GcsCodecTest, MsgTypeNamesAreDistinct) {
  EXPECT_STREQ(to_string(MsgType::kCcs), "CCS");
  EXPECT_STREQ(to_string(MsgType::kGetState), "GetState");
  EXPECT_STRNE(to_string(MsgType::kUserRequest), to_string(MsgType::kUserReply));
}

// --- Group views ---------------------------------------------------------------------

TEST(GcsGroupTest, JoinPropagatesToAllHosts) {
  Cluster c(3);
  c.start_all();
  c.eps[1]->join_group(GroupId{7}, ReplicaId{0});
  c.sim.run_for(50'000);
  for (auto& ep : c.eps) {
    const auto& v = ep->view(GroupId{7});
    ASSERT_EQ(v.members.size(), 1u);
    EXPECT_EQ(v.members[0].node, NodeId{1});
    EXPECT_EQ(v.members[0].replica, ReplicaId{0});
  }
}

TEST(GcsGroupTest, MultipleJoinsSortedConsistently) {
  Cluster c(3);
  c.start_all();
  c.eps[2]->join_group(GroupId{7}, ReplicaId{2});
  c.eps[0]->join_group(GroupId{7}, ReplicaId{0});
  c.eps[1]->join_group(GroupId{7}, ReplicaId{1});
  c.sim.run_for(50'000);
  const auto& v0 = c.eps[0]->view(GroupId{7});
  ASSERT_EQ(v0.members.size(), 3u);
  for (auto& ep : c.eps) {
    EXPECT_EQ(ep->view(GroupId{7}).members, v0.members);
  }
  // Sorted by (node, replica).
  EXPECT_EQ(v0.members[0].node, NodeId{0});
  EXPECT_EQ(v0.members[2].node, NodeId{2});
}

TEST(GcsGroupTest, LeaveRemovesMember) {
  Cluster c(2);
  c.start_all();
  c.eps[0]->join_group(GroupId{1}, ReplicaId{0});
  c.eps[1]->join_group(GroupId{1}, ReplicaId{1});
  c.sim.run_for(50'000);
  c.eps[1]->leave_group(GroupId{1}, ReplicaId{1});
  c.sim.run_for(50'000);
  for (auto& ep : c.eps) {
    ASSERT_EQ(ep->view(GroupId{1}).members.size(), 1u);
    EXPECT_EQ(ep->view(GroupId{1}).members[0].replica, ReplicaId{0});
  }
}

TEST(GcsGroupTest, JoinIsIdempotent) {
  Cluster c(2);
  c.start_all();
  c.eps[0]->join_group(GroupId{1}, ReplicaId{0});
  c.eps[0]->join_group(GroupId{1}, ReplicaId{0});
  c.sim.run_for(50'000);
  EXPECT_EQ(c.eps[1]->view(GroupId{1}).members.size(), 1u);
}

TEST(GcsGroupTest, ViewCallbackFiresOnChange) {
  Cluster c(2);
  c.start_all();
  std::vector<std::size_t> sizes;
  c.eps[0]->subscribe_view(GroupId{4}, [&](const GroupView& v) { sizes.push_back(v.members.size()); });
  c.eps[0]->join_group(GroupId{4}, ReplicaId{0});
  c.eps[1]->join_group(GroupId{4}, ReplicaId{1});
  c.sim.run_for(50'000);
  ASSERT_GE(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 2u);
}

TEST(GcsGroupTest, NodeCrashRemovesItsMembersFromGroupViews) {
  Cluster c(3);
  c.start_all();
  for (std::uint32_t i = 0; i < 3; ++i) c.eps[i]->join_group(GroupId{5}, ReplicaId{i});
  c.sim.run_for(50'000);
  ASSERT_EQ(c.eps[0]->view(GroupId{5}).members.size(), 3u);
  c.totems[2]->crash();
  c.sim.run_for(500'000);
  for (std::uint32_t i = 0; i < 2; ++i) {
    ASSERT_EQ(c.eps[i]->view(GroupId{5}).members.size(), 2u) << "host " << i;
    for (const auto& m : c.eps[i]->view(GroupId{5}).members) {
      EXPECT_NE(m.node, NodeId{2});
    }
  }
}

TEST(GcsGroupTest, RestartedHostLearnsGroupMembership) {
  Cluster c(3);
  c.start_all();
  c.eps[0]->join_group(GroupId{5}, ReplicaId{0});
  c.eps[1]->join_group(GroupId{5}, ReplicaId{1});
  c.sim.run_for(50'000);
  c.totems[2]->crash();
  c.sim.run_for(500'000);
  c.totems[2]->restart();
  c.sim.run_for(1'000'000);
  // Host 2 rejoined the ring after missing the original joins; the
  // re-announcement on the Totem view change fills it in.
  EXPECT_EQ(c.eps[2]->view(GroupId{5}).members.size(), 2u);
}

// --- Ordered delivery ---------------------------------------------------------------

TEST(GcsDeliveryTest, SubscribersReceiveGroupTraffic) {
  Cluster c(2);
  c.start_all();
  std::vector<std::string> got;
  c.eps[1]->subscribe(GroupId{9}, [&](const Message& m) { got.push_back(str(m.payload)); });
  c.eps[0]->send(user_msg(GroupId{8}, GroupId{9}, ConnectionId{1}, 1, "hello"));
  c.sim.run_for(50'000);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "hello");
}

TEST(GcsDeliveryTest, NonSubscribersSeeNothing) {
  Cluster c(2);
  c.start_all();
  int other = 0;
  c.eps[1]->subscribe(GroupId{10}, [&](const Message&) { ++other; });
  c.eps[0]->send(user_msg(GroupId{8}, GroupId{9}, ConnectionId{1}, 1, "hello"));
  c.sim.run_for(50'000);
  EXPECT_EQ(other, 0);
}

TEST(GcsDeliveryTest, TotalOrderAcrossHosts) {
  Cluster c(3);
  c.start_all();
  std::vector<std::vector<std::string>> got(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    c.eps[i]->subscribe(GroupId{9}, [&, i](const Message& m) { got[i].push_back(str(m.payload)); });
  }
  // Each host sends on its own connection so nothing is a duplicate.
  for (int k = 0; k < 10; ++k) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      c.eps[i]->send(user_msg(GroupId{i}, GroupId{9}, ConnectionId{i}, static_cast<MsgSeqNum>(k + 1),
                              "h" + std::to_string(i) + "." + std::to_string(k)));
    }
  }
  c.sim.run_for(200'000);
  ASSERT_EQ(got[0].size(), 30u);
  EXPECT_EQ(got[1], got[0]);
  EXPECT_EQ(got[2], got[0]);
}

// --- Duplicate detection / suppression ------------------------------------------------

TEST(GcsDupTest, ReceiverDropsSecondCopyOfSameLogicalMessage) {
  Cluster c(3);
  c.start_all();
  std::vector<std::string> got;
  c.eps[2]->subscribe(GroupId{9}, [&](const Message& m) { got.push_back(str(m.payload)); });
  // Two "replicas" on different hosts send the same logical message
  // (same conn, tag, seq) — classic active replication.
  c.eps[0]->send(user_msg(GroupId{1}, GroupId{9}, ConnectionId{4}, 1, "copyA", ReplicaId{0}));
  c.eps[1]->send(user_msg(GroupId{1}, GroupId{9}, ConnectionId{4}, 1, "copyB", ReplicaId{1}));
  c.sim.run_for(100'000);
  ASSERT_EQ(got.size(), 1u);
  const auto& st = c.eps[2]->stats();
  EXPECT_EQ(st.delivered[static_cast<int>(MsgType::kUserRequest)], 1u);
  // At least one endpoint observed and dropped the duplicate (unless
  // sender-side suppression beat it to the wire).
}

TEST(GcsDupTest, StaleLowerSeqIsDropped) {
  Cluster c(2);
  c.start_all();
  std::vector<std::string> got;
  c.eps[1]->subscribe(GroupId{9}, [&](const Message& m) { got.push_back(str(m.payload)); });
  c.eps[0]->send(user_msg(GroupId{1}, GroupId{9}, ConnectionId{4}, 5, "five"));
  c.sim.run_for(50'000);
  c.eps[0]->send(user_msg(GroupId{1}, GroupId{9}, ConnectionId{4}, 3, "three(stale)"));
  c.sim.run_for(50'000);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "five");
}

TEST(GcsDupTest, DifferentTagsAreIndependentStreams) {
  Cluster c(2);
  c.start_all();
  std::vector<std::string> got;
  c.eps[1]->subscribe(GroupId{9}, [&](const Message& m) { got.push_back(str(m.payload)); });
  auto m1 = user_msg(GroupId{1}, GroupId{9}, ConnectionId{4}, 1, "threadA");
  m1.hdr.tag = ThreadId{1};
  auto m2 = user_msg(GroupId{1}, GroupId{9}, ConnectionId{4}, 1, "threadB");
  m2.hdr.tag = ThreadId{2};
  c.eps[0]->send(m1);
  c.eps[0]->send(m2);
  c.sim.run_for(50'000);
  EXPECT_EQ(got.size(), 2u);
}

TEST(GcsDupTest, DifferentTypesAreIndependentStreams) {
  Cluster c(2);
  c.start_all();
  int requests = 0, replies = 0;
  c.eps[1]->subscribe(GroupId{9}, [&](const Message& m) {
    if (m.hdr.type == MsgType::kUserRequest) ++requests;
    if (m.hdr.type == MsgType::kUserReply) ++replies;
  });
  c.eps[0]->send(user_msg(GroupId{1}, GroupId{9}, ConnectionId{4}, 1, "req"));
  c.eps[0]->send(
      user_msg(GroupId{1}, GroupId{9}, ConnectionId{4}, 1, "rep", ReplicaId{0}, MsgType::kUserReply));
  c.sim.run_for(50'000);
  EXPECT_EQ(requests, 1);
  EXPECT_EQ(replies, 1);
}

TEST(GcsDupTest, SenderSideSuppressionCancelsQueuedCopy) {
  Cluster c(3);
  c.start_all();
  // Host 0 sends the logical message; host 1's copy is queued behind a pile
  // of other messages, so host 0's copy is ordered first and host 1 must
  // cancel its own copy before it reaches the wire.
  for (int k = 0; k < 40; ++k) {
    c.eps[1]->send(user_msg(GroupId{2}, GroupId{3}, ConnectionId{7}, static_cast<MsgSeqNum>(k + 1),
                            "filler" + std::to_string(k)));
  }
  c.eps[1]->send(user_msg(GroupId{1}, GroupId{9}, ConnectionId{4}, 1, "dup", ReplicaId{1}));
  c.eps[0]->send(user_msg(GroupId{1}, GroupId{9}, ConnectionId{4}, 1, "dup", ReplicaId{0}));
  c.sim.run_for(300'000);
  const auto& st1 = c.eps[1]->stats();
  EXPECT_EQ(st1.sent_cancelled[static_cast<int>(MsgType::kUserRequest)], 1u);
  // Exactly one copy of the logical message hit the wire across both hosts.
  const auto wire0 = c.eps[0]->stats().on_wire(MsgType::kUserRequest);
  const auto wire1 = c.eps[1]->stats().on_wire(MsgType::kUserRequest);
  EXPECT_EQ(wire0 + wire1, 41u);  // 40 fillers + 1 winning copy
}

TEST(GcsDupTest, ExplicitCancelBeforeSendWorks) {
  Cluster c(2);
  // Ring not yet formed: everything stays queued.
  auto h = c.eps[0]->send(user_msg(GroupId{1}, GroupId{9}, ConnectionId{4}, 1, "never"));
  EXPECT_TRUE(c.eps[0]->cancel(h));
  c.start_all();
  std::vector<std::string> got;
  c.eps[1]->subscribe(GroupId{9}, [&](const Message& m) { got.push_back(str(m.payload)); });
  c.sim.run_for(100'000);
  EXPECT_TRUE(got.empty());
}

TEST(GcsDupTest, CancelAfterWireFails) {
  Cluster c(2);
  c.start_all();
  auto h = c.eps[0]->send(user_msg(GroupId{1}, GroupId{9}, ConnectionId{4}, 1, "gone"));
  c.sim.run_for(100'000);
  EXPECT_FALSE(c.eps[0]->cancel(h));
}

TEST(GcsStatsTest, OnWireCountsAttemptedMinusCancelled) {
  GcsStats st;
  st.sent_attempted[static_cast<int>(MsgType::kCcs)] = 10;
  st.sent_cancelled[static_cast<int>(MsgType::kCcs)] = 7;
  EXPECT_EQ(st.on_wire(MsgType::kCcs), 3u);
}

}  // namespace
}  // namespace cts::gcs
