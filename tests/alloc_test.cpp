// Allocation-accounting tests for the hot-path overhaul: this binary
// replaces the global operator new/delete with byte-counting versions and
// asserts the zero-copy / allocation-free contracts directly:
//
//   * a broadcast allocates the payload buffer ONCE, shared read-only by
//     every receiver (historically: one copy per receiver plus one per
//     scheduled delivery closure);
//   * a unicast send allocates the payload once, not twice (the historical
//     double copy: caller -> send() -> deliver closure);
//   * scheduling events whose closures fit InlineFn's 48-byte inline buffer
//     allocates nothing at steady state (the event arena is warm).
//
// Every measurement runs after a warm-up round so one-time arena growth
// (event-heap slots, NIC queues) is excluded; what remains is the per-send
// cost the tentpole optimizes.  The counters live in this test binary only;
// nothing in the library links against them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_calls{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_payload_sized_allocs{0};  // >= kPayloadThreshold

constexpr std::size_t kPayloadThreshold = 1300;  // just under the 1400B MTU payloads below

void note_alloc(std::size_t n) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (n >= kPayloadThreshold) g_payload_sized_allocs.fetch_add(1, std::memory_order_relaxed);
}

struct AllocSnapshot {
  std::uint64_t calls;
  std::uint64_t bytes;
  std::uint64_t payload_sized;
};

AllocSnapshot snap() {
  return {g_alloc_calls.load(), g_alloc_bytes.load(), g_payload_sized_allocs.load()};
}

}  // namespace

// GCC pairs new-expressions with the replaced operator delete below and
// (wrongly) warns that free() does not match; malloc/free is exactly what
// both replacements use.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  note_alloc(n);
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  note_alloc(n);
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cts::net {
namespace {

TEST(AllocTest, BroadcastPayloadAllocatedOnceForAllReceivers) {
  sim::Simulator sim{1};
  NetworkConfig cfg;
  Network net(sim, cfg);
  std::size_t delivered = 0;
  std::size_t delivered_bytes = 0;
  for (std::uint32_t i = 0; i < 9; ++i) {
    net.attach(NodeId{i}, [&](NodeId, const SharedBytes& b) {
      ++delivered;
      delivered_bytes += b.size();
    });
  }
  net.broadcast(NodeId{0}, Bytes(1400, 0x5a));  // warm-up: grows arenas once
  sim.run();
  ASSERT_EQ(delivered, 8u);

  const AllocSnapshot before = snap();
  net.broadcast(NodeId{0}, Bytes(1400, 0x5a));
  sim.run();
  const AllocSnapshot after = snap();
  ASSERT_EQ(delivered, 16u);
  ASSERT_EQ(delivered_bytes, 16u * 1400u);
  // Exactly one payload-sized buffer: the Bytes constructed above.  Every
  // receiver observed the same refcounted allocation.
  EXPECT_EQ(after.payload_sized - before.payload_sized, 1u);
}

TEST(AllocTest, UnicastPayloadAllocatedOnceNotTwice) {
  sim::Simulator sim{1};
  NetworkConfig cfg;
  Network net(sim, cfg);
  std::size_t delivered_bytes = 0;
  net.attach(NodeId{0}, [&](NodeId, const SharedBytes&) {});
  net.attach(NodeId{1}, [&](NodeId, const SharedBytes& b) { delivered_bytes += b.size(); });
  net.send(NodeId{0}, NodeId{1}, Bytes(2048, 0x11));  // warm-up
  sim.run();
  ASSERT_EQ(delivered_bytes, 2048u);

  const AllocSnapshot before = snap();
  net.send(NodeId{0}, NodeId{1}, Bytes(2048, 0x11));
  sim.run();
  const AllocSnapshot after = snap();
  ASSERT_EQ(delivered_bytes, 2u * 2048u);
  // The historical path copied the payload into the deliver closure on top
  // of the caller's buffer; the SharedBytes path allocates exactly once.
  EXPECT_EQ(after.payload_sized - before.payload_sized, 1u);
}

TEST(AllocTest, InlineEventSchedulingIsAllocationFreeAtSteadyState) {
  sim::Simulator sim{1};
  std::uint64_t fired = 0;
  struct Capture {  // the counter pointer + 32 bytes of payload = 40 bytes
    std::uint64_t* fired;
    std::uint64_t pad[4];
  };
  static_assert(sizeof(Capture) <= sim::InlineFn::kInlineSize);
  auto schedule_round = [&] {
    for (int i = 0; i < 256; ++i) {
      sim.after(static_cast<cts::Micros>(i % 7),
                [c = Capture{&fired, {1, 2, 3, 4}}] { ++*c.fired; });
    }
    sim.run();
  };
  schedule_round();  // warm-up: grows the heap array and slot arena once
  const AllocSnapshot before = snap();
  schedule_round();
  const AllocSnapshot after = snap();
  EXPECT_EQ(fired, 512u);
  EXPECT_EQ(after.calls - before.calls, 0u)
      << "scheduling inline-capture events allocated " << (after.bytes - before.bytes)
      << " bytes at steady state";
}

TEST(AllocTest, BroadcastDeliveryClosuresDoNotAllocateAtSteadyState) {
  // End-to-end: after warm-up, a broadcast's per-receiver deliveries ride
  // entirely on inline closures + the shared payload.  Handing the payload
  // in by move leaves only the SharedBytes control block as a permissible
  // small allocation; the buffer itself is moved, the closures are inline.
  sim::Simulator sim{1};
  NetworkConfig cfg;
  Network net(sim, cfg);
  std::size_t delivered = 0;
  for (std::uint32_t i = 0; i < 9; ++i) {
    net.attach(NodeId{i}, [&](NodeId, const SharedBytes&) { ++delivered; });
  }
  Bytes payload(1400, 0x33);
  net.broadcast(NodeId{0}, payload);  // warm-up (copies: payload reused below)
  sim.run();
  const AllocSnapshot before = snap();
  net.broadcast(NodeId{0}, std::move(payload));
  sim.run();
  const AllocSnapshot after = snap();
  ASSERT_EQ(delivered, 16u);
  EXPECT_EQ(after.payload_sized - before.payload_sized, 0u);
  EXPECT_LE(after.calls - before.calls, 2u)
      << "broadcast delivery allocated " << (after.bytes - before.bytes) << " bytes";
}

}  // namespace
}  // namespace cts::net
