// cts::FlatMap / FlatSet / DenseNodeIndex: the deterministic flat
// containers under the delivery pipeline (src/common/flat_map.hpp).
//
// Two layers of evidence:
//  1. A randomized fuzz drives FlatMap and a std::map oracle through the
//     same 50k-operation script and demands identical contents, identical
//     iteration order, and identical lookup answers at every step — for
//     plain integer keys and for the packed tuple keys the GCS/oracle
//     migrations rely on (pack order == tuple lexicographic order).
//  2. Whole-stack double runs: the migrated pipeline must export
//     byte-identical artifacts across identical-seed runs in happy,
//     failover, lossy, and sharded scenarios (the container swap is only
//     correct if no iteration-order change leaked into the schedule).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "app/kv_store.hpp"
#include "app/testbed.hpp"
#include "common/flat_map.hpp"
#include "common/rng.hpp"

namespace cts {
namespace {

// --- fuzz vs std::map oracle ---------------------------------------------------

/// A packed stream key shaped like the GCS/oracle migrations: comparison
/// must reproduce std::tuple<u64, u64, u64> lexicographic order.
struct PackedKey {
  std::uint64_t hi = 0;
  std::uint64_t mid = 0;
  std::uint64_t lo = 0;
  auto operator<=>(const PackedKey&) const = default;
};

template <typename Key>
struct KeyGen {
  static Key make(Rng& rng);
};

template <>
struct KeyGen<std::uint32_t> {
  static std::uint32_t make(Rng& rng) {
    return static_cast<std::uint32_t>(rng.range(0, 400));
  }
};

template <>
struct KeyGen<std::uint64_t> {
  static std::uint64_t make(Rng& rng) {
    // Packed (hi, lo) pairs: exercise pack_u32_pair ordering.
    return pack_u32_pair(static_cast<std::uint32_t>(rng.range(0, 20)),
                         static_cast<std::uint32_t>(rng.range(0, 20)));
  }
};

template <>
struct KeyGen<PackedKey> {
  static PackedKey make(Rng& rng) {
    return PackedKey{static_cast<std::uint64_t>(rng.range(0, 8)),
                     static_cast<std::uint64_t>(rng.range(0, 8)),
                     static_cast<std::uint64_t>(rng.range(0, 8))};
  }
};

template <typename Key>
void fuzz_against_std_map(std::uint64_t seed, int steps) {
  Rng rng(seed);
  FlatMap<Key, std::uint64_t> flat;
  std::map<Key, std::uint64_t> oracle;

  const auto check_equal = [&] {
    ASSERT_EQ(flat.size(), oracle.size());
    auto fit = flat.begin();
    for (const auto& [k, v] : oracle) {
      ASSERT_TRUE(fit != flat.end());
      ASSERT_TRUE(fit->first == k) << "iteration order diverged from std::map";
      ASSERT_EQ(fit->second, v);
      ++fit;
    }
    ASSERT_TRUE(fit == flat.end());
  };

  for (int i = 0; i < steps; ++i) {
    const Key k = KeyGen<Key>::make(rng);
    switch (rng.range(0, 9)) {
      case 0:
      case 1:
      case 2: {  // operator[] upsert
        const auto v = static_cast<std::uint64_t>(i);
        flat[k] = v;
        oracle[k] = v;
        break;
      }
      case 3: {  // try_emplace (no overwrite)
        const auto v = static_cast<std::uint64_t>(i) * 3u;
        const auto [fit, fok] = flat.try_emplace(k, v);
        const auto [oit, ook] = oracle.try_emplace(k, v);
        ASSERT_EQ(fok, ook);
        ASSERT_EQ(fit->second, oit->second);
        break;
      }
      case 4: {  // insert_or_assign
        const auto v = static_cast<std::uint64_t>(i) * 7u;
        ASSERT_EQ(flat.insert_or_assign(k, v).second,
                  oracle.insert_or_assign(k, v).second);
        break;
      }
      case 5: {  // erase by key
        ASSERT_EQ(flat.erase(k), oracle.erase(k));
        break;
      }
      case 6: {  // find / contains / count
        const auto fit = flat.find(k);
        const auto oit = oracle.find(k);
        ASSERT_EQ(fit == flat.end(), oit == oracle.end());
        if (oit != oracle.end()) {
          ASSERT_EQ(fit->second, oit->second);
        }
        ASSERT_EQ(flat.contains(k), oracle.contains(k));
        ASSERT_EQ(flat.count(k), oracle.count(k));
        break;
      }
      case 7: {  // lower_bound / upper_bound agree
        const auto flb = flat.lower_bound(k);
        const auto olb = oracle.lower_bound(k);
        ASSERT_EQ(flb == flat.end(), olb == oracle.end());
        if (olb != oracle.end()) {
          ASSERT_TRUE(flb->first == olb->first);
        }
        const auto fub = flat.upper_bound(k);
        const auto oub = oracle.upper_bound(k);
        ASSERT_EQ(fub == flat.end(), oub == oracle.end());
        if (oub != oracle.end()) {
          ASSERT_TRUE(fub->first == oub->first);
        }
        break;
      }
      case 8: {  // erase_if over a key-dependent predicate (occasionally)
        if (rng.range(0, 50) == 0) {
          const auto pred_flat = [](const auto& kv) { return kv.second % 5u == 0u; };
          const std::size_t f = erase_if(flat, pred_flat);
          const std::size_t o = std::erase_if(
              oracle, [](const auto& kv) { return kv.second % 5u == 0u; });
          ASSERT_EQ(f, o);
        }
        break;
      }
      case 9: {  // batch insert a small run
        std::vector<std::pair<Key, std::uint64_t>> batch;
        const int n = static_cast<int>(rng.range(0, 6));
        for (int j = 0; j < n; ++j) {
          batch.emplace_back(KeyGen<Key>::make(rng),
                             static_cast<std::uint64_t>(i * 100 + j));
        }
        flat.insert_batch(batch.begin(), batch.end());
        // insert() semantics: existing keys win, first batch occurrence wins.
        for (const auto& kv : batch) oracle.insert(kv);
        break;
      }
      default:
        break;
    }
    if (i % 977 == 0) check_equal();
  }
  check_equal();
}

TEST(FlatMapFuzz, MatchesStdMapU32Keys) { fuzz_against_std_map<std::uint32_t>(1, 50'000); }
TEST(FlatMapFuzz, MatchesStdMapPackedU64Keys) { fuzz_against_std_map<std::uint64_t>(2, 50'000); }
TEST(FlatMapFuzz, MatchesStdMapPackedTupleKeys) { fuzz_against_std_map<PackedKey>(3, 50'000); }

TEST(FlatMapFuzz, PackU32PairIsLexicographic) {
  // The packed u64's operator< must reproduce (hi, lo) tuple order — the
  // property every packed-key migration in gcs/oracle leans on.
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const auto a_hi = static_cast<std::uint32_t>(rng.range(0, 1000));
    const auto a_lo = static_cast<std::uint32_t>(rng.range(0, 1000));
    const auto b_hi = static_cast<std::uint32_t>(rng.range(0, 1000));
    const auto b_lo = static_cast<std::uint32_t>(rng.range(0, 1000));
    const bool tuple_less = std::pair{a_hi, a_lo} < std::pair{b_hi, b_lo};
    ASSERT_EQ(pack_u32_pair(a_hi, a_lo) < pack_u32_pair(b_hi, b_lo), tuple_less);
  }
}

TEST(FlatSetFuzz, MatchesStdSet) {
  Rng rng(11);
  FlatSet<std::uint32_t> flat;
  std::set<std::uint32_t> oracle;
  for (int i = 0; i < 50'000; ++i) {
    const auto k = static_cast<std::uint32_t>(rng.range(0, 300));
    switch (rng.range(0, 2)) {
      case 0:
        ASSERT_EQ(flat.insert(k).second, oracle.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(flat.erase(k), oracle.erase(k));
        break;
      case 2:
        ASSERT_EQ(flat.contains(k), oracle.contains(k) ? true : false);
        break;
      default:
        break;
    }
  }
  ASSERT_EQ(flat.size(), oracle.size());
  auto fit = flat.begin();
  for (std::uint32_t k : oracle) {
    ASSERT_EQ(*fit, k);
    ++fit;
  }
}

TEST(DenseNodeIndexTest, MatchesStdMapIterationOrder) {
  Rng rng(13);
  DenseNodeIndex<std::uint64_t> dense;
  std::map<std::uint32_t, std::uint64_t> oracle;
  for (int i = 0; i < 50'000; ++i) {
    const auto id = static_cast<std::uint32_t>(rng.range(0, 64));
    if (rng.range(0, 3) == 0) {
      ASSERT_EQ(dense.erase(id), oracle.erase(id) > 0);
    } else {
      dense.ensure(id) = static_cast<std::uint64_t>(i);
      oracle[id] = static_cast<std::uint64_t>(i);
    }
    ASSERT_EQ(dense.contains(id), oracle.contains(id));
  }
  ASSERT_EQ(dense.size(), oracle.size());
  std::vector<std::pair<std::uint32_t, std::uint64_t>> walked;
  dense.for_each([&](std::uint32_t id, std::uint64_t& v) { walked.emplace_back(id, v); });
  ASSERT_EQ(walked.size(), oracle.size());
  auto oit = oracle.begin();
  for (const auto& [id, v] : walked) {
    EXPECT_EQ(id, oit->first);
    EXPECT_EQ(v, oit->second);
    ++oit;
  }
}

TEST(DenseNodeIndexTest, EraseKeepsOtherSlotPointersValid) {
  DenseNodeIndex<int> dense;
  dense.ensure(0) = 10;
  dense.ensure(5) = 50;
  int* p0 = dense.find(0);
  ASSERT_NE(p0, nullptr);
  dense.erase(5);            // erase never reallocates
  EXPECT_EQ(*p0, 10);
  EXPECT_FALSE(dense.contains(5));
  dense.ensure(5) = 51;      // re-ensure of an existing slot: no realloc either
  EXPECT_EQ(*p0, 10);
}

TEST(FlatMapTest, InsertBatchMatchesInsertLoop) {
  // Equal keys: existing entries win, then earlier batch entries win —
  // exactly a loop of insert() calls.
  FlatMap<int, std::string> batched;
  batched[3] = "existing";
  std::vector<std::pair<int, std::string>> batch = {
      {5, "five"}, {3, "batch-three"}, {1, "one"}, {5, "five-dup"}, {2, "two"}};
  batched.insert_batch(batch.begin(), batch.end());

  FlatMap<int, std::string> looped;
  looped[3] = "existing";
  for (const auto& kv : batch) looped.insert(kv);

  EXPECT_TRUE(batched == looped);
  EXPECT_EQ(batched.at(3), "existing");
  EXPECT_EQ(batched.at(5), "five");
  EXPECT_EQ(batched.size(), 4u);
}

// --- whole-stack double-run byte-identity --------------------------------------

/// Drive a Testbed scenario and return its exported metrics JSON plus a
/// digest of every live replica's reply history — the artifacts that would
/// change if the flat-container swap perturbed any iteration order.
struct ScenarioResult {
  std::string metrics_json;
  std::vector<std::uint64_t> digests;

  friend bool operator==(const ScenarioResult&, const ScenarioResult&) = default;
};

enum class Scenario { kHappy, kFailover, kLossy };

ScenarioResult run_scenario(Scenario sc, std::uint64_t seed) {
  app::TestbedConfig cfg;
  cfg.seed = seed;
  cfg.factory = app::kv_store_factory();
  if (sc == Scenario::kLossy) {
    cfg.net.loss_probability = 0.05;
    cfg.net.corrupt_probability = 0.01;
  }
  app::Testbed tb(cfg);
  tb.start();

  bool done = false;
  auto driver = [&]() -> sim::Task {
    for (int i = 0; i < 25; ++i) {
      co_await tb.sim().delay(900);
      const Bytes r = co_await tb.client().call(
          app::kv_put("key" + std::to_string(i % 7), "v" + std::to_string(i)));
      (void)r;
      if (sc == Scenario::kFailover && i == 8) tb.crash_server(1);
      if (sc == Scenario::kFailover && i == 16) tb.restart_server(1);
    }
    done = true;
  };
  driver();
  const Micros deadline = tb.sim().now() + 200'000'000;
  while (!done && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 100'000);
  tb.sim().run_for(5'000'000);
  EXPECT_TRUE(done);

  ScenarioResult out;
  for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
    if (!tb.clock_of(tb.server_node(s)).alive()) continue;
    for (std::uint32_t sh = 0; sh < tb.server(s).shard_count(); ++sh) {
      out.digests.push_back(static_cast<app::KvStoreApp&>(tb.server(s).app(sh)).state_digest());
    }
  }
  tb.recorder().sync_sim_stats();
  out.metrics_json = tb.recorder().metrics().to_json();
  return out;
}

TEST(FlatContainerDoubleRun, HappyScenarioByteIdentical) {
  const auto a = run_scenario(Scenario::kHappy, 42);
  const auto b = run_scenario(Scenario::kHappy, 42);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.metrics_json.empty());
}

TEST(FlatContainerDoubleRun, FailoverScenarioByteIdentical) {
  const auto a = run_scenario(Scenario::kFailover, 43);
  const auto b = run_scenario(Scenario::kFailover, 43);
  EXPECT_EQ(a, b);
}

TEST(FlatContainerDoubleRun, LossyScenarioByteIdentical) {
  const auto a = run_scenario(Scenario::kLossy, 44);
  const auto b = run_scenario(Scenario::kLossy, 44);
  EXPECT_EQ(a, b);
}

TEST(FlatContainerDoubleRun, ShardedScenarioByteIdentical) {
  // Sharded replicas: four logical threads per replica, key-routed
  // requests — the multi-stream shape that exercises the packed
  // (conn, type, tag) FlatMap keys hardest.
  const auto run = [] {
    app::TestbedConfig cfg;
    cfg.seed = 45;
    cfg.factory = app::kv_store_factory();
    cfg.shards = 4;
    cfg.shard_fn = app::kv_shard_of;
    app::Testbed tb(cfg);
    tb.start();

    bool done = false;
    auto driver = [&]() -> sim::Task {
      for (int i = 0; i < 30; ++i) {
        co_await tb.sim().delay(800);
        co_await tb.client().call(
            app::kv_put("key" + std::to_string(i), "v" + std::to_string(i)));
      }
      done = true;
    };
    driver();
    const Micros deadline = tb.sim().now() + 200'000'000;
    while (!done && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 100'000);
    tb.sim().run_for(3'000'000);
    EXPECT_TRUE(done);

    ScenarioResult out;
    for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
      for (std::uint32_t sh = 0; sh < tb.server(s).shard_count(); ++sh) {
        out.digests.push_back(
            static_cast<app::KvStoreApp&>(tb.server(s).app(sh)).state_digest());
      }
    }
    tb.recorder().sync_sim_stats();
    out.metrics_json = tb.recorder().metrics().to_json();
    return out;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cts
