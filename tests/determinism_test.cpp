// Whole-stack determinism: identical seeds must reproduce identical
// executions — replies, replica state, wire statistics — even through
// fault schedules.  This property is what makes every other test in the
// repository meaningful (a flaky simulation cannot assert agreement), and
// it is the property a user relies on when replaying a failure from a
// seed.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <utility>

#include "app/kv_store.hpp"
#include "app/testbed.hpp"

namespace cts::app {
namespace {

using replication::ReplicationStyle;

struct Trace {
  std::vector<Micros> stamps;
  std::vector<std::uint64_t> digests;   // per live replica
  std::uint64_t ccs_wire = 0;
  std::uint64_t packets = 0;

  friend bool operator==(const Trace&, const Trace&) = default;
};

Trace run_time_server(std::uint64_t seed, ReplicationStyle style, bool with_faults) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.style = style;
  if (style == ReplicationStyle::kPassive) cfg.checkpoint_every = 5;
  Testbed tb(cfg);
  tb.start();

  Trace t;
  bool done = false;
  auto driver = [&]() -> sim::Task {
    for (int i = 0; i < 30; ++i) {
      co_await tb.sim().delay(700);
      const Bytes r = co_await tb.client().call(make_get_time_request());
      BytesReader rd(r);
      t.stamps.push_back(rd.i64() * 1'000'000 + rd.i64());
      if (with_faults && i == 10) tb.crash_server(2);
      if (with_faults && i == 18) tb.restart_server(2);
    }
    done = true;
  };
  driver();
  const Micros deadline = tb.sim().now() + 300'000'000;
  while (!done && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 100'000);
  tb.sim().run_for(5'000'000);

  for (std::uint32_t s = 0; s < 3; ++s) {
    if (!tb.clock_of(tb.server_node(s)).alive() || !tb.server(s).recovered()) continue;
    std::uint64_t d = 1469598103ULL;
    for (Micros v : tb.server_app(s).time_history()) {
      d ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (d << 6);
    }
    t.digests.push_back(d);
    t.ccs_wire += tb.gcs_of(tb.server_node(s)).stats().on_wire(gcs::MsgType::kCcs);
  }
  t.packets = tb.net().stats().packets_sent;
  // Fail-stop tripwire: even on the fault schedules, no replica ever read
  // its hardware clock while crashed.
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(tb.clock_of(tb.server_node(s)).reads_after_failure(), 0u) << "server " << s;
  }
  return t;
}

TEST(DeterminismTest, ActiveStyleBitIdenticalAcrossRuns) {
  const Trace a = run_time_server(11, ReplicationStyle::kActive, false);
  const Trace b = run_time_server(11, ReplicationStyle::kActive, false);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.stamps.size(), 30u);
}

TEST(DeterminismTest, SemiActiveStyleBitIdenticalAcrossRuns) {
  const Trace a = run_time_server(12, ReplicationStyle::kSemiActive, false);
  const Trace b = run_time_server(12, ReplicationStyle::kSemiActive, false);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, PassiveStyleBitIdenticalAcrossRuns) {
  const Trace a = run_time_server(13, ReplicationStyle::kPassive, false);
  const Trace b = run_time_server(13, ReplicationStyle::kPassive, false);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, IdenticalEvenThroughCrashAndRecovery) {
  const Trace a = run_time_server(14, ReplicationStyle::kActive, true);
  const Trace b = run_time_server(14, ReplicationStyle::kActive, true);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.stamps.size(), 30u);
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentSchedules) {
  const Trace a = run_time_server(15, ReplicationStyle::kActive, false);
  const Trace b = run_time_server(16, ReplicationStyle::kActive, false);
  // Same workload, different jitter/clock draws: the value sequences must
  // differ (if they didn't, the "randomness" would not be exercising
  // anything).
  EXPECT_NE(a.stamps, b.stamps);
}

TEST(DeterminismTest, PartitionAndHealScheduleIsSeedStable) {
  // Regression for the hash-map iteration-order hazard: partition() and
  // heal() rebuild component_of_, and broadcast() draws per-receiver
  // randomness while walking handlers_ — both must iterate in NodeId order
  // for the post-heal schedule to replay from the seed.
  auto run = [](std::uint64_t seed) {
    TestbedConfig cfg;
    cfg.seed = seed;
    Testbed tb(cfg);
    tb.start();

    Trace t;
    bool done = false;
    auto driver = [&]() -> sim::Task {
      for (int i = 0; i < 24; ++i) {
        co_await tb.sim().delay(700);
        const Bytes r = co_await tb.client().call(make_get_time_request());
        BytesReader rd(r);
        t.stamps.push_back(rd.i64() * 1'000'000 + rd.i64());
        // Isolate server 2 mid-run, then heal: the survivors re-form the
        // ring, and the healed node merges back in.
        if (i == 8) tb.net().partition({std::vector<NodeId>{tb.server_node(2)}});
        if (i == 16) tb.net().heal();
      }
      done = true;
    };
    driver();
    const Micros deadline = tb.sim().now() + 300'000'000;
    while (!done && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 100'000);
    tb.sim().run_for(5'000'000);

    for (std::uint32_t s = 0; s < 3; ++s) {
      if (!tb.clock_of(tb.server_node(s)).alive() || !tb.server(s).recovered()) continue;
      std::uint64_t d = 1469598103ULL;
      for (Micros v : tb.server_app(s).time_history()) {
        d ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (d << 6);
      }
      t.digests.push_back(d);
      t.ccs_wire += tb.gcs_of(tb.server_node(s)).stats().on_wire(gcs::MsgType::kCcs);
    }
    t.packets = tb.net().stats().packets_sent;
    return t;
  };
  const Trace a = run(27);
  const Trace b = run(27);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.stamps.size(), 24u);
}

TEST(DeterminismTest, ExportedArtifactsAreByteIdenticalAcrossRuns) {
  // The acceptance bar for the observability layer: two identical-seed runs
  // must export byte-identical metrics JSON and trace JSONL, so a run can
  // be diffed against a replay with plain cmp(1).
  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  auto run = [&](const std::string& label) {
    TestbedConfig cfg;
    cfg.seed = 31;
    Testbed tb(cfg);
    tb.start();
    bool done = false;
    auto driver = [&]() -> sim::Task {
      for (int i = 0; i < 12; ++i) {
        co_await tb.sim().delay(900);
        co_await tb.client().call(make_get_time_request());
      }
      done = true;
    };
    driver();
    const Micros deadline = tb.sim().now() + 120'000'000;
    while (!done && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 100'000);
    tb.sim().run_for(2'000'000);
    const std::string metrics = label + ".metrics.json";
    const std::string trace = label + ".trace.jsonl";
    EXPECT_TRUE(tb.recorder().export_files(metrics, trace));
    return std::make_pair(slurp(metrics), slurp(trace));
  };
  const auto a = run("det_export_a");
  const auto b = run("det_export_b");
  ASSERT_FALSE(a.first.empty());
  ASSERT_FALSE(a.second.empty());
  EXPECT_EQ(a.first, b.first) << "metrics JSON differs between identical-seed runs";
  EXPECT_EQ(a.second, b.second) << "trace JSONL differs between identical-seed runs";
}

TEST(DeterminismTest, KvWorkloadIdenticalAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    TestbedConfig cfg;
    cfg.seed = seed;
    cfg.factory = kv_store_factory();
    cfg.shards = 2;
    cfg.shard_fn = kv_shard_of;
    Testbed tb(cfg);
    tb.start();
    Rng rng(99);
    int done_count = 0;
    for (int i = 0; i < 25; ++i) {
      const std::string key = "k" + std::to_string(rng.below(6));
      Bytes req = (i % 3 == 0) ? kv_acquire(key, 1 + rng.below(2), 5'000)
                               : kv_put(key, "v" + std::to_string(i));
      tb.client().invoke(std::move(req), [&](const Bytes&) { ++done_count; });
    }
    const Micros deadline = tb.sim().now() + 120'000'000;
    while (done_count < 25 && tb.sim().now() < deadline) {
      tb.sim().run_until(tb.sim().now() + 100'000);
    }
    tb.sim().run_for(5'000'000);
    std::vector<std::uint64_t> digests;
    for (std::uint32_t s = 0; s < 3; ++s) {
      for (std::uint32_t sh = 0; sh < 2; ++sh) {
        digests.push_back(static_cast<KvStoreApp&>(tb.server(s).app(sh)).state_digest());
      }
    }
    return digests;
  };
  EXPECT_EQ(run(21), run(21));
}

}  // namespace
}  // namespace cts::app
