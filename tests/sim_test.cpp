// Unit tests for the discrete-event simulator: ordering, cancellation,
// coroutine delays and signals.
#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <vector>

#include "sim/simulator.hpp"

namespace cts::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, SimultaneousEventsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.at(5, [&, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, AfterSchedulesRelativeToNow) {
  Simulator sim;
  Micros fired_at = -1;
  sim.at(100, [&] { sim.after(50, [&] { fired_at = sim.now(); }); });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, RunForSaturatesAtTheMicrosHorizon) {
  Simulator sim;
  constexpr Micros kMax = std::numeric_limits<Micros>::max();
  bool fired = false;
  sim.at(1'000, [&] { fired = true; });
  sim.run_until(500);
  // now + max would wrap into the past; run_for must clamp to the horizon
  // and mean "run everything ever scheduled".
  sim.run_for(kMax);
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), kMax);
  sim.run_for(kMax);  // already at the horizon: stays put
  EXPECT_EQ(sim.now(), kMax);
  // Events scheduled AT the horizon still run.
  bool late = false;
  sim.after(0, [&] { late = true; });
  sim.run_for(1);
  EXPECT_TRUE(late);
  EXPECT_EQ(sim.now(), kMax);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto id = sim.after(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFireIsANoop) {
  Simulator sim;
  bool fired = false;
  auto id = sim.after(10, [&] { fired = true; });
  sim.run();
  sim.cancel(id);  // must not crash or corrupt
  EXPECT_TRUE(fired);
  sim.after(5, [] {});
  EXPECT_EQ(sim.run(), 1u);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<Micros> fired;
  sim.at(10, [&] { fired.push_back(10); });
  sim.at(20, [&] { fired.push_back(20); });
  sim.at(30, [&] { fired.push_back(30); });
  sim.run_until(25);
  EXPECT_EQ(fired, (std::vector<Micros>{10, 20}));
  EXPECT_EQ(sim.now(), 25);
  sim.run();
  EXPECT_EQ(fired.back(), 30);
}

TEST(SimulatorTest, RunUntilInclusiveOfBoundary) {
  Simulator sim;
  bool fired = false;
  sim.at(25, [&] { fired = true; });
  sim.run_until(25);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, RunForAdvancesRelative) {
  Simulator sim;
  sim.run_until(100);
  bool fired = false;
  sim.after(10, [&] { fired = true; });
  sim.run_for(10);
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 110);
}

TEST(SimulatorTest, RunRespectsMaxEvents) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.at(i, [&] { ++count; });
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.after(1, chain);
  };
  sim.after(1, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, RngIsDeterministicPerSeed) {
  Simulator a(99), b(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.rng().next(), b.rng().next());
}

// --- Coroutines ---------------------------------------------------------------

Task delay_then_mark(Simulator& sim, Micros d, bool& done, Micros& at) {
  co_await sim.delay(d);
  done = true;
  at = sim.now();
}

TEST(SimulatorCoroTest, DelayResumesAtTheRightTime) {
  Simulator sim;
  bool done = false;
  Micros at = -1;
  delay_then_mark(sim, 42, done, at);
  EXPECT_FALSE(done);  // coroutine suspended at the delay
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(at, 42);
}

Task sequential_delays(Simulator& sim, std::vector<Micros>& trace) {
  co_await sim.delay(10);
  trace.push_back(sim.now());
  co_await sim.delay(20);
  trace.push_back(sim.now());
  co_await sim.delay(30);
  trace.push_back(sim.now());
}

TEST(SimulatorCoroTest, SequentialDelaysAccumulate) {
  Simulator sim;
  std::vector<Micros> trace;
  sequential_delays(sim, trace);
  sim.run();
  EXPECT_EQ(trace, (std::vector<Micros>{10, 30, 60}));
}

Task wait_on(Signal& sig, int& wakeups, Simulator& sim, Micros& when) {
  co_await sig.wait();
  ++wakeups;
  when = sim.now();
}

TEST(SimulatorCoroTest, SignalNotifyOneWakesExactlyOne) {
  Simulator sim;
  Signal sig(sim);
  int wakeups = 0;
  Micros when = -1;
  wait_on(sig, wakeups, sim, when);
  wait_on(sig, wakeups, sim, when);
  sim.run();
  EXPECT_EQ(wakeups, 0);
  EXPECT_EQ(sig.waiter_count(), 2u);

  sim.after(5, [&] { sig.notify_one(); });
  sim.run();
  EXPECT_EQ(wakeups, 1);
  EXPECT_EQ(when, 5);
  EXPECT_EQ(sig.waiter_count(), 1u);
}

TEST(SimulatorCoroTest, SignalNotifyAllWakesEveryone) {
  Simulator sim;
  Signal sig(sim);
  int wakeups = 0;
  Micros when = -1;
  for (int i = 0; i < 5; ++i) wait_on(sig, wakeups, sim, when);
  sim.run();
  sim.after(7, [&] { sig.notify_all(); });
  sim.run();
  EXPECT_EQ(wakeups, 5);
  EXPECT_EQ(sig.waiter_count(), 0u);
}

TEST(SimulatorCoroTest, NotifyWithNoWaitersIsANoop) {
  Simulator sim;
  Signal sig(sim);
  sig.notify_one();
  sig.notify_all();
  sim.run();
  EXPECT_EQ(sig.waiter_count(), 0u);
}

Task ping_pong(Simulator& /*sim*/, Signal& my_turn, Signal& their_turn,
               std::vector<int>& trace, int label, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await my_turn.wait();
    trace.push_back(label);
    their_turn.notify_one();
  }
}

TEST(SimulatorCoroTest, TwoCoroutinesAlternateViaSignals) {
  Simulator sim;
  Signal a(sim), b(sim);
  std::vector<int> trace;
  ping_pong(sim, a, b, trace, 1, 3);
  ping_pong(sim, b, a, trace, 2, 3);
  sim.after(0, [&] { a.notify_one(); });
  sim.run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

}  // namespace
}  // namespace cts::sim
