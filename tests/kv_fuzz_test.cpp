// Fuzzed end-to-end workloads: random KV operations interleaved with
// random crash/recovery of replicas.  Invariants: every request is
// answered, live replicas never diverge, and lease decisions stay
// deterministic through arbitrary fault schedules.
#include <gtest/gtest.h>

#include "app/kv_store.hpp"
#include "app/testbed.hpp"

namespace cts::app {
namespace {

struct FuzzParam {
  std::uint64_t seed;
  std::uint32_t shards;
  replication::ReplicationStyle style;
};

class KvCrashFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(KvCrashFuzz, LiveReplicasNeverDiverge) {
  const auto p = GetParam();
  TestbedConfig cfg;
  cfg.servers = 3;
  cfg.seed = p.seed;
  cfg.style = p.style;
  cfg.factory = kv_store_factory();
  cfg.shards = p.shards;
  if (p.shards > 1) cfg.shard_fn = kv_shard_of;
  if (p.style == replication::ReplicationStyle::kPassive) cfg.checkpoint_every = 6;
  Testbed tb(cfg);
  tb.start();

  Rng fuzz(p.seed * 7 + 1);
  int answered = 0, issued = 0;
  bool down[3] = {false, false, false};
  bool recovering[3] = {false, false, false};

  auto issue = [&] {
    const std::string key = "k" + std::to_string(fuzz.below(10));
    Bytes req;
    switch (fuzz.below(5)) {
      case 0:
        req = kv_put(key, "v" + std::to_string(issued), fuzz.below(3));
        break;
      case 1:
        req = kv_get(key);
        break;
      case 2:
        req = kv_del(key, fuzz.below(3));
        break;
      case 3:
        req = kv_acquire(key, 1 + fuzz.below(3), 1'000 + (Micros)fuzz.below(20'000));
        break;
      default:
        req = kv_release(key, 1 + fuzz.below(3));
        break;
    }
    ++issued;
    tb.client().invoke(std::move(req), [&](const Bytes&) { ++answered; });
  };

  for (int step = 0; step < 120; ++step) {
    tb.sim().run_for(fuzz.range(500, 5'000));
    const auto dice = fuzz.below(12);
    if (dice == 0) {
      // Crash one replica — but never reduce below a 2-live majority
      // (universe = client + 3 servers; 2 servers + client = 3 of 4).
      int live = 0;
      for (bool d : down) live += !d;
      if (live > 2) {
        const auto victim = fuzz.below(3);
        if (!down[victim] && !recovering[victim]) {
          down[victim] = true;
          tb.crash_server(static_cast<std::uint32_t>(victim));
        }
      }
    } else if (dice == 1) {
      for (std::uint32_t v = 0; v < 3; ++v) {
        if (down[v] && !recovering[v]) {
          recovering[v] = true;
          tb.restart_server(v, [&, v] {
            down[v] = false;
            recovering[v] = false;
          });
          break;
        }
      }
    } else {
      issue();
    }
  }

  // Quiesce: recover everyone, drain everything.
  for (std::uint32_t v = 0; v < 3; ++v) {
    if (down[v] && !recovering[v]) {
      recovering[v] = true;
      tb.restart_server(v, [&, v] {
        down[v] = false;
        recovering[v] = false;
      });
    }
  }
  const Micros deadline = tb.sim().now() + 600'000'000;
  while (tb.sim().now() < deadline) {
    tb.sim().run_until(tb.sim().now() + 100'000);
    bool settled = (answered == issued);
    for (std::uint32_t v = 0; v < 3; ++v) settled &= !down[v] && !recovering[v];
    if (settled) break;
  }

  EXPECT_EQ(answered, issued) << "seed " << p.seed << ": dropped replies";
  tb.sim().run_for(5'000'000);
  for (std::uint32_t s = 1; s < 3; ++s) {
    for (std::uint32_t sh = 0; sh < tb.server(s).shard_count(); ++sh) {
      if (p.style == replication::ReplicationStyle::kPassive && !tb.server(s).is_primary()) {
        continue;
      }
      EXPECT_EQ(static_cast<KvStoreApp&>(tb.server(s).app(sh)).state_digest(),
                static_cast<KvStoreApp&>(tb.server(0).app(sh)).state_digest())
          << "seed " << p.seed << " server " << s << " shard " << sh;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, KvCrashFuzz,
    ::testing::Values(FuzzParam{201, 1, replication::ReplicationStyle::kActive},
                      FuzzParam{202, 1, replication::ReplicationStyle::kActive},
                      FuzzParam{203, 2, replication::ReplicationStyle::kActive},
                      FuzzParam{204, 4, replication::ReplicationStyle::kActive},
                      FuzzParam{205, 1, replication::ReplicationStyle::kSemiActive},
                      FuzzParam{206, 2, replication::ReplicationStyle::kSemiActive},
                      FuzzParam{207, 1, replication::ReplicationStyle::kActive},
                      FuzzParam{208, 4, replication::ReplicationStyle::kActive}),
    [](const ::testing::TestParamInfo<FuzzParam>& i) {
      const char* style =
          i.param.style == replication::ReplicationStyle::kActive ? "active" : "semiactive";
      return std::string("seed") + std::to_string(i.param.seed) + "_" + style + "_sh" +
             std::to_string(i.param.shards);
    });

}  // namespace
}  // namespace cts::app
