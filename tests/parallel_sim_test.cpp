// Island-parallel simulation: conservative-window coordinator semantics and
// the determinism contract — a parallel archipelago run exports traces and
// metrics byte-identical to the serial run (doc/PARALLEL.md).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "app/archipelago.hpp"
#include "obs/merge.hpp"
#include "sim/parallel.hpp"

namespace cts {
namespace {

using sim::IslandCoordinator;
using sim::IslandId;
using sim::Simulator;

TEST(IslandCoordinator, RunsAllEventsAndLinesUpClocks) {
  Simulator a(1), b(2), c(3);
  IslandCoordinator coord(100);
  coord.add_island(a);
  coord.add_island(b);
  coord.add_island(c);

  int fired = 0;
  a.at(50, [&] { ++fired; });
  a.at(5'000, [&] { ++fired; });
  b.at(75, [&] { ++fired; });
  c.at(9'999, [&] { ++fired; });

  coord.run_until(10'000);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(a.now(), 10'000);
  EXPECT_EQ(b.now(), 10'000);
  EXPECT_EQ(c.now(), 10'000);
  EXPECT_EQ(coord.now(), 10'000);
  EXPECT_GE(coord.stats().epochs, 1u);
  EXPECT_EQ(coord.stats().events_executed, 4u);
}

TEST(IslandCoordinator, CrossIslandPostDeliversAtRequestedTime) {
  Simulator a(1), b(2);
  IslandCoordinator coord(500);
  const IslandId ia = coord.add_island(a);
  const IslandId ib = coord.add_island(b);

  Micros delivered_at = -1;
  a.at(1'000, [&] {
    coord.post(ia, ib, a.now() + 500, [&] { delivered_at = b.now(); });
  });
  coord.run_until(10'000);
  EXPECT_EQ(delivered_at, 1'500);
  EXPECT_EQ(coord.stats().posts, 1u);
}

TEST(IslandCoordinator, MailboxDrainsInCanonicalSourceOrder) {
  // Two islands post to a third with the SAME delivery time from the same
  // epoch; execution order at the destination must be (source island, post
  // order), regardless of worker count.
  for (unsigned threads : {1u, 2u, 3u}) {
    Simulator a(1), b(2), c(3);
    IslandCoordinator coord(1'000);
    const IslandId ia = coord.add_island(a);
    const IslandId ib = coord.add_island(b);
    const IslandId ic = coord.add_island(c);
    coord.set_threads(threads);

    std::vector<int> order;  // written only by island c's execution
    b.at(10, [&] {
      coord.post(ib, ic, 1'010, [&] { order.push_back(20); });
      coord.post(ib, ic, 1'010, [&] { order.push_back(21); });
    });
    a.at(10, [&] {
      coord.post(ia, ic, 1'010, [&] { order.push_back(10); });
      coord.post(ia, ic, 1'010, [&] { order.push_back(11); });
    });
    coord.run_until(5'000);
    ASSERT_EQ(order.size(), 4u) << "threads=" << threads;
    EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21})) << "threads=" << threads;
  }
}

// A chatty 4-island workload: every island runs a periodic local chain and
// every third tick posts a message to the next island, which logs it and
// schedules a local follow-up.  Returns the merged (time, island, label)
// log, which must be identical for every worker count.
std::vector<std::string> chatty_run(unsigned threads) {
  constexpr int kIslands = 4;
  constexpr Micros kFloor = 700;
  std::vector<Simulator> sims;
  sims.reserve(kIslands);
  for (int i = 0; i < kIslands; ++i) sims.emplace_back(static_cast<std::uint64_t>(i + 1));
  IslandCoordinator coord(kFloor);
  std::vector<IslandId> ids;
  for (auto& s : sims) ids.push_back(coord.add_island(s));
  coord.set_threads(threads);

  // Per-island logs; island i's log is written only by island i's events.
  std::vector<std::vector<std::pair<Micros, int>>> logs(kIslands);

  struct Driver {
    IslandCoordinator* coord;
    std::vector<Simulator>* sims;
    std::vector<IslandId>* ids;
    std::vector<std::vector<std::pair<Micros, int>>>* logs;

    void tick(int island, int k) {
      auto& sim = (*sims)[static_cast<std::size_t>(island)];
      (*logs)[static_cast<std::size_t>(island)].push_back({sim.now(), k});
      if (k % 3 == 0) {
        const int dst = (island + 1) % kIslands;
        coord->post((*ids)[static_cast<std::size_t>(island)],
                    (*ids)[static_cast<std::size_t>(dst)], sim.now() + kFloor,
                    [this, dst, k] {
                      (*logs)[static_cast<std::size_t>(dst)].push_back(
                          {(*sims)[static_cast<std::size_t>(dst)].now(), 1000 + k});
                      (*sims)[static_cast<std::size_t>(dst)].after(
                          37, [this, dst, k] {
                            (*logs)[static_cast<std::size_t>(dst)].push_back(
                                {(*sims)[static_cast<std::size_t>(dst)].now(), 2000 + k});
                          });
                    });
      }
      if (k < 40) {
        sim.after(101 + 13 * (island + 1), [this, island, k] { tick(island, k + 1); });
      }
    }
  };
  Driver d{&coord, &sims, &ids, &logs};
  for (int i = 0; i < kIslands; ++i) {
    sims[static_cast<std::size_t>(i)].at(10 + i, [&d, i] { d.tick(i, 1); });
  }
  coord.run_until(60'000);

  std::vector<std::string> merged;
  for (int i = 0; i < kIslands; ++i) {
    for (const auto& [at, label] : logs[static_cast<std::size_t>(i)]) {
      merged.push_back(std::to_string(i) + "@" + std::to_string(at) + ":" +
                       std::to_string(label));
    }
  }
  return merged;
}

TEST(IslandCoordinator, SerialAndParallelSchedulesIdentical) {
  const auto serial = chatty_run(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(chatty_run(2), serial);
  EXPECT_EQ(chatty_run(4), serial);
}

TEST(IslandCoordinator, ThreadsFromEnv) {
  ::unsetenv("CTS_SIM_THREADS");
  EXPECT_EQ(sim::threads_from_env(3), 3u);
  ::setenv("CTS_SIM_THREADS", "4", 1);
  EXPECT_EQ(sim::threads_from_env(1), 4u);
  ::setenv("CTS_SIM_THREADS", "0", 1);
  EXPECT_EQ(sim::threads_from_env(2), 2u);
  ::setenv("CTS_SIM_THREADS", "junk", 1);
  EXPECT_EQ(sim::threads_from_env(2), 2u);
  ::unsetenv("CTS_SIM_THREADS");
}

// --- Archipelago: the full-stack determinism contract ---------------------

struct ArchRun {
  std::string trace;
  std::string metrics;
  std::uint64_t deliveries = 0;
  std::uint64_t egress = 0;
};

// Build a 3-ring archipelago, drive cross-ring stamped traffic (with an
// optional loss + crash/restart schedule on ring 1), and export the merged
// observability documents.
ArchRun arch_run(std::uint64_t seed, unsigned threads, bool faults) {
  app::ArchipelagoConfig cfg;
  cfg.topo.rings = 3;
  cfg.topo.servers = 3;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.link_latency_us = 800;
  if (faults) cfg.net.loss_probability = 0.01;
  app::Archipelago ar(cfg);

  // Ring 1 echoes every stamped delivery back to ring 0 (replica 0 only,
  // so the echo is one logical broadcast per message).
  ar.on_stamped([&ar](std::size_t ring, std::uint32_t replica, Micros, const Bytes& body) {
    if (ring == 1 && replica == 0 && !body.empty() && body[0] != 0xEE) {
      ar.stamped_broadcast_at(ar.ring(1).sim().now() + 1'000, 1, 0, Bytes{0xEE});
    }
  });
  ar.start(400'000);

  for (int k = 0; k < 10; ++k) {
    const Micros at = 500'000 + 150'000 * k;
    ar.stamped_broadcast_at(at, 0, 1, Bytes{static_cast<std::uint8_t>(k)});
    ar.stamped_broadcast_at(at + 40'000, 2, 0, Bytes{0x40, static_cast<std::uint8_t>(k)});
  }
  if (faults) {
    ar.ring(1).sim().at(900'000, [&ar] { ar.crash_server(1, 2); });
    ar.ring(1).sim().at(1'400'000, [&ar] { ar.restart_server(1, 2); });
  }
  ar.run_until(3'000'000);

  ArchRun out;
  out.trace = obs::merged_trace_jsonl(ar.recorders());
  out.metrics = obs::merged_metrics_json(ar.recorders());
  for (std::size_t r = 0; r < ar.ring_count(); ++r) {
    out.deliveries += ar.stamped_deliveries(r);
  }
  out.egress = ar.link().total_stats().frames_sent;
  return out;
}

TEST(ArchipelagoDeterminism, SerialAndParallelByteIdentical) {
  // Four seeds; the last two add loss plus a crash/restart schedule.  Each
  // seed's serial run is the reference; 2- and 4-worker runs must match it
  // byte for byte, trace and metrics both, with the oracle on and aborting
  // (Testbed default) in every mode.
  struct Case {
    std::uint64_t seed;
    bool faults;
  };
  for (const Case cs : {Case{11, false}, Case{22, false}, Case{33, true}, Case{44, true}}) {
    const ArchRun ref = arch_run(cs.seed, 1, cs.faults);
    ASSERT_GT(ref.deliveries, 0u) << "seed " << cs.seed;
    ASSERT_GT(ref.egress, 0u) << "seed " << cs.seed;
    for (unsigned threads : {2u, 4u}) {
      const ArchRun par = arch_run(cs.seed, threads, cs.faults);
      EXPECT_EQ(par.trace, ref.trace) << "seed " << cs.seed << " threads " << threads;
      EXPECT_EQ(par.metrics, ref.metrics) << "seed " << cs.seed << " threads " << threads;
      EXPECT_EQ(par.deliveries, ref.deliveries)
          << "seed " << cs.seed << " threads " << threads;
      EXPECT_EQ(par.egress, ref.egress) << "seed " << cs.seed << " threads " << threads;
    }
  }
}

TEST(ArchipelagoDeterminism, CrossRingCausalityUnderParallelRun) {
  // A->B then B->A reply: the reply's timestamp must exceed the original's
  // (causal floor), observed under a 2-worker parallel run.
  app::ArchipelagoConfig cfg;
  cfg.topo.rings = 2;
  cfg.threads = 2;
  cfg.seed = 7;
  app::Archipelago ar(cfg);

  // Written only by the respective ring's worker.
  std::vector<Micros> seen_at_1;
  std::vector<Micros> seen_at_0;
  ar.on_stamped([&](std::size_t ring, std::uint32_t replica, Micros ts, const Bytes& body) {
    if (ring == 1) {
      if (replica == 0 && body.size() == 1 && body[0] == 1) {
        ar.stamped_broadcast_at(ar.ring(1).sim().now() + 500, 1, 0, Bytes{2});
      }
      seen_at_1.push_back(ts);
    } else {
      seen_at_0.push_back(ts);
    }
  });
  ar.start(400'000);
  ar.stamped_broadcast_at(500'000, 0, 1, Bytes{1});
  ar.run_until(2'500'000);

  ASSERT_FALSE(seen_at_1.empty());
  ASSERT_FALSE(seen_at_0.empty());
  // Every reply stamp (read from B's group clock after its floor rose past
  // A's timestamp) is strictly greater than A's original stamp.
  EXPECT_GT(seen_at_0.front(), seen_at_1.front());
  EXPECT_GT(ar.stamped_deliveries(0), 0u);
  EXPECT_GT(ar.stamped_deliveries(1), 0u);
}

}  // namespace
}  // namespace cts
