// Tests for the Consistent Time Service core algorithm: agreement,
// monotonicity, validity, offset maintenance, duplicate suppression, the
// common input buffer, and the interposed syscall facade.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clock/physical_clock.hpp"
#include "cts/consistent_time_service.hpp"
#include "cts/time_syscalls.hpp"
#include "gcs/gcs.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "totem/totem.hpp"

namespace cts::ccs {
namespace {

constexpr GroupId kGroup{1};
constexpr ConnectionId kCcsConn{100};
constexpr ThreadId kThread0{0};

/// A full replica-group rig: N hosts, each with a Totem node, a GCS
/// endpoint, a drifting physical clock, and a ConsistentTimeService.
struct Rig {
  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<totem::TotemNode>> totems;
  std::vector<std::unique_ptr<gcs::GcsEndpoint>> eps;
  std::vector<std::unique_ptr<clock::PhysicalClock>> clocks;
  std::vector<std::unique_ptr<ConsistentTimeService>> svcs;
  std::vector<std::vector<Micros>> readings;      // group clock values per replica
  std::vector<std::vector<RoundResult>> rounds;   // observer records per replica

  explicit Rig(std::size_t n, ReplicationStyle style = ReplicationStyle::kActive,
               std::uint64_t seed = 1, DriftCompensation drift = DriftCompensation::kNone,
               Micros max_forward_jump = 0)
      : sim(seed), net(sim, {}) {
    totem::TotemConfig tcfg;
    for (std::uint32_t i = 0; i < n; ++i) tcfg.universe.push_back(NodeId{i});
    readings.resize(n);
    rounds.resize(n);
    Rng clock_rng(seed * 7919 + 13);
    for (std::uint32_t i = 0; i < n; ++i) {
      totems.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
      eps.push_back(std::make_unique<gcs::GcsEndpoint>(sim, *totems.back()));
      clocks.push_back(std::make_unique<clock::PhysicalClock>(
          sim, clock::random_clock_config(clock_rng)));
      CtsConfig cfg;
      cfg.group = kGroup;
      cfg.ccs_conn = kCcsConn;
      cfg.replica = ReplicaId{i};
      cfg.style = style;
      cfg.drift = drift;
      cfg.max_forward_jump_us = max_forward_jump;
      svcs.push_back(std::make_unique<ConsistentTimeService>(sim, *eps.back(), *clocks.back(), cfg));
      svcs.back()->set_round_observer(
          [this, i](const RoundResult& rr) { rounds[i].push_back(rr); });
      if (style != ReplicationStyle::kActive) svcs.back()->set_primary(i == 0);
    }
  }

  void start(Micros settle = 100'000) {
    for (std::uint32_t i = 0; i < totems.size(); ++i) {
      totems[i]->start();
      eps[i]->join_group(kGroup, ReplicaId{i});
    }
    sim.run_for(settle);
  }

  /// One replica's logical thread performing `ops` sequential clock reads
  /// with deterministic pseudo-random inter-op delays (the paper's "empty
  /// iteration loop" between operations).
  sim::Task worker(std::uint32_t i, int ops, std::uint64_t delay_seed) {
    Rng rng(delay_seed * 1000 + i);
    for (int k = 0; k < ops; ++k) {
      co_await sim.delay(rng.range(60, 400));
      const Micros v = co_await svcs[i]->get_time(kThread0);
      readings[i].push_back(v);
    }
  }

  void run_workers(int ops, Micros budget = 60'000'000, std::uint64_t delay_seed = 42) {
    for (std::uint32_t i = 0; i < svcs.size(); ++i) worker(i, ops, delay_seed);
    const Micros deadline = sim.now() + budget;
    while (sim.now() < deadline) {
      sim.run_until(sim.now() + 10'000);
      bool all_done = true;
      for (auto& r : readings) all_done &= (r.size() >= static_cast<std::size_t>(ops));
      if (all_done) return;
    }
  }
};

// --- Agreement -------------------------------------------------------------------

TEST(CtsAgreementTest, AllReplicasReturnIdenticalSequences) {
  Rig rig(3);
  rig.start();
  rig.run_workers(100);
  ASSERT_EQ(rig.readings[0].size(), 100u);
  EXPECT_EQ(rig.readings[1], rig.readings[0]);
  EXPECT_EQ(rig.readings[2], rig.readings[0]);
}

TEST(CtsAgreementTest, HoldsDespiteWildlyDifferentPhysicalClocks) {
  // Force extreme disagreement between the hardware clocks.
  Rig rig(3);
  rig.start();
  // Replace clock configs by constructing a fresh rig is complex; instead
  // verify the existing random clocks disagree, then check agreement.
  const Micros a = rig.clocks[0]->read();
  const Micros b = rig.clocks[1]->read();
  const Micros c = rig.clocks[2]->read();
  EXPECT_TRUE(a != b || b != c);  // random configs virtually never collide
  rig.run_workers(50);
  EXPECT_EQ(rig.readings[1], rig.readings[0]);
  EXPECT_EQ(rig.readings[2], rig.readings[0]);
}

TEST(CtsAgreementTest, TwoReplicaGroupAgrees) {
  Rig rig(2);
  rig.start();
  rig.run_workers(60);
  ASSERT_EQ(rig.readings[0].size(), 60u);
  EXPECT_EQ(rig.readings[1], rig.readings[0]);
}

TEST(CtsAgreementTest, DeterministicAcrossIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    Rig rig(3, ReplicationStyle::kActive, seed);
    rig.start();
    rig.run_workers(40);
    return rig.readings[0];
  };
  EXPECT_EQ(run(5), run(5));
}

// --- Monotonicity -----------------------------------------------------------------

TEST(CtsMonotonicityTest, GroupClockStrictlyIncreases) {
  Rig rig(3);
  rig.start();
  rig.run_workers(200);
  for (auto& r : rig.readings) {
    ASSERT_EQ(r.size(), 200u);
    for (std::size_t i = 1; i < r.size(); ++i) {
      EXPECT_GT(r[i], r[i - 1]) << "group clock rolled back at reading " << i;
    }
  }
}

TEST(CtsMonotonicityTest, GroupClockNeverExceedsFastestProposal) {
  // Validity: each round's value is some replica's genuine proposal (modulo
  // the monotonic clamp, which never fires in single-thread workloads).
  Rig rig(3);
  rig.start();
  rig.run_workers(50);
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (const auto& rr : rig.rounds[i]) {
      if (rr.winner_replica == ReplicaId{i}) {
        // At the winner, the group clock equals its own proposal.
        EXPECT_EQ(rr.group_clock, rr.physical_clock + (rr.offset_after));
      }
    }
  }
}

// --- Offset maintenance --------------------------------------------------------------

TEST(CtsOffsetTest, OffsetEqualsGroupClockMinusPhysical) {
  Rig rig(3);
  rig.start();
  rig.run_workers(30);
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (const auto& rr : rig.rounds[i]) {
      EXPECT_EQ(rr.offset_after, rr.group_clock - rr.physical_clock);
    }
  }
}

TEST(CtsOffsetTest, FirstRoundUsesRawPhysicalClock) {
  // Paper Figure 2, lines 1-2: offset starts at zero, so the first CCS
  // message proposes the raw physical clock value of whichever replica
  // wins the first round.
  Rig rig(3);
  rig.start();
  rig.run_workers(1);
  const Micros v = rig.readings[0][0];
  bool matches_someone = false;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto& rr = rig.rounds[i][0];
    if (rr.winner_replica == ReplicaId{i}) {
      matches_someone = (v == rr.physical_clock);
    }
  }
  EXPECT_TRUE(matches_someone);
}

TEST(CtsOffsetTest, OffsetTrendIsDecreasingWithoutCompensation) {
  // Section 3.3 / Figure 6(b): because the winner's proposal excludes the
  // communication delay of the previous round, offsets drift downward.
  Rig rig(3);
  rig.start();
  rig.run_workers(300);
  const auto& rs = rig.rounds[0];
  ASSERT_GE(rs.size(), 300u);
  EXPECT_LT(rs.back().offset_after, rs.front().offset_after);
}

// --- Winner / synchronizer behavior ------------------------------------------------------

TEST(CtsWinnerTest, SynchronizerRotatesAmongReplicas) {
  Rig rig(3);
  rig.start();
  rig.run_workers(200);
  std::set<std::uint32_t> winners;
  for (const auto& rr : rig.rounds[0]) winners.insert(rr.winner_replica.value);
  // With randomized inter-op delays every replica should win sometimes
  // (paper Figure 6(a): "the synchronizer is constantly changing").
  EXPECT_GE(winners.size(), 2u);
}

TEST(CtsWinnerTest, AllReplicasAgreeOnTheWinnerSequence) {
  Rig rig(3);
  rig.start();
  rig.run_workers(80);
  for (std::uint32_t i = 1; i < 3; ++i) {
    ASSERT_EQ(rig.rounds[i].size(), rig.rounds[0].size());
    for (std::size_t k = 0; k < rig.rounds[0].size(); ++k) {
      EXPECT_EQ(rig.rounds[i][k].winner_replica, rig.rounds[0][k].winner_replica);
      EXPECT_EQ(rig.rounds[i][k].group_clock, rig.rounds[0][k].group_clock);
    }
  }
}

// --- Duplicate suppression ------------------------------------------------------------------

TEST(CtsSuppressionTest, RoughlyOneCcsMessagePerRoundOnTheWire) {
  Rig rig(3);
  rig.start();
  const int kOps = 200;
  rig.run_workers(kOps);
  std::uint64_t wire_total = 0;
  for (auto& ep : rig.eps) wire_total += ep->stats().on_wire(gcs::MsgType::kCcs);
  // The paper reports #CCS messages on the wire == #rounds (1 + 9977 + 22
  // for 10,000 rounds).  Allow a small margin for in-flight copies that
  // could not be cancelled.
  EXPECT_GE(wire_total, static_cast<std::uint64_t>(kOps));
  EXPECT_LE(wire_total, static_cast<std::uint64_t>(kOps) * 3 / 2);
}

TEST(CtsSuppressionTest, SlowReplicaAvoidsSendingEntirely) {
  Rig rig(3);
  rig.start();
  // Replica 2's worker starts 5 ms late every round-trip: its CCS message
  // is always already buffered when it performs the operation.
  auto slow_worker = [&](std::uint32_t i) -> sim::Task {
    for (int k = 0; k < 30; ++k) {
      co_await rig.sim.delay(5'000);
      const Micros v = co_await rig.svcs[i]->get_time(kThread0);
      rig.readings[i].push_back(v);
    }
  };
  auto fast_worker = [&](std::uint32_t i) -> sim::Task {
    for (int k = 0; k < 30; ++k) {
      co_await rig.sim.delay(100);
      const Micros v = co_await rig.svcs[i]->get_time(kThread0);
      rig.readings[i].push_back(v);
    }
  };
  fast_worker(0);
  fast_worker(1);
  slow_worker(2);
  rig.sim.run_for(10'000'000);
  ASSERT_EQ(rig.readings[2].size(), 30u);
  EXPECT_EQ(rig.readings[2], rig.readings[0]);
  // The slow replica found every round's message already buffered.
  EXPECT_GT(rig.svcs[2]->stats().sends_avoided, 20u);
  EXPECT_LT(rig.svcs[2]->stats().sends_initiated, 5u);
}

// --- Common input buffer ----------------------------------------------------------------------

TEST(CtsCommonBufferTest, MessagesForUnregisteredThreadArePreserved) {
  Rig rig(2);
  rig.start();
  const ThreadId late_thread{9};
  // Replica 0 runs a round on thread 9 before replica 1 has registered it.
  Micros v0 = 0, v1 = 0;
  rig.svcs[0]->register_thread(late_thread);
  rig.svcs[0]->start_round(late_thread, ClockCallType::kGettimeofday, [&](Micros v) { v0 = v; });
  rig.sim.run_for(200'000);
  ASSERT_NE(v0, 0);
  // Now replica 1 creates the thread and performs the same logical op: the
  // parked message must complete it without any new CCS send.
  const auto sends_before = rig.svcs[1]->stats().sends_initiated;
  rig.svcs[1]->register_thread(late_thread);
  rig.svcs[1]->start_round(late_thread, ClockCallType::kGettimeofday, [&](Micros v) { v1 = v; });
  rig.sim.run_for(200'000);
  EXPECT_EQ(v1, v0);
  EXPECT_EQ(rig.svcs[1]->stats().sends_initiated, sends_before);
}

TEST(CtsCommonBufferTest, MultipleThreadsHaveIndependentRounds) {
  Rig rig(2);
  rig.start();
  // Run two logical threads on both replicas.
  std::vector<std::vector<Micros>> r0(2), r1(2);
  auto w = [&](std::uint32_t i, ThreadId t, std::vector<Micros>& out) -> sim::Task {
    for (int k = 0; k < 10; ++k) {
      co_await rig.sim.delay(100);
      out.push_back(co_await rig.svcs[i]->get_time(t));
    }
  };
  w(0, ThreadId{1}, r0[0]);
  w(0, ThreadId{2}, r0[1]);
  w(1, ThreadId{1}, r1[0]);
  w(1, ThreadId{2}, r1[1]);
  rig.sim.run_for(10'000'000);
  ASSERT_EQ(r0[0].size(), 10u);
  ASSERT_EQ(r0[1].size(), 10u);
  EXPECT_EQ(r0[0], r1[0]);  // thread 1 agrees across replicas
  EXPECT_EQ(r0[1], r1[1]);  // thread 2 agrees across replicas
}

// --- Stats ------------------------------------------------------------------------------------

TEST(CtsStatsTest, RoundsCompletedMatchesOperations) {
  Rig rig(3);
  rig.start();
  rig.run_workers(25);
  for (auto& svc : rig.svcs) {
    EXPECT_EQ(svc->stats().rounds_completed, 25u);
  }
}

TEST(CtsStatsTest, RoundsWonSumToTotalRounds) {
  Rig rig(3);
  rig.start();
  rig.run_workers(50);
  std::uint64_t won = 0;
  for (auto& svc : rig.svcs) won += svc->stats().rounds_won;
  EXPECT_EQ(won, 50u);
}

// --- Syscall facade ------------------------------------------------------------------------------

TEST(TimeSyscallsTest, ConversionsPreserveResolution) {
  EXPECT_EQ(TimeVal::from_us(3'000'042).tv_sec, 3);
  EXPECT_EQ(TimeVal::from_us(3'000'042).tv_usec, 42);
  EXPECT_EQ(TimeVal::from_us(3'000'042).total_us(), 3'000'042);
  EXPECT_EQ(TimeB::from_us(3'456'789).time, 3);
  EXPECT_EQ(TimeB::from_us(3'456'789).millitm, 456);
  EXPECT_EQ(TimeB::from_us(3'456'789).total_us(), 3'456'000);
}

TEST(TimeSyscallsTest, DifferentSyscallsAgreeAcrossReplicas) {
  Rig rig(2);
  rig.start();
  std::vector<TimeVal> tv(2);
  std::vector<std::int64_t> tt(2);
  std::vector<TimeB> tb(2);
  auto w = [&](std::uint32_t i) -> sim::Task {
    TimeSyscalls sys(*rig.svcs[i], ThreadId{3});
    co_await rig.sim.delay(100 + i * 71);
    tv[i] = co_await sys.gettimeofday();
    co_await rig.sim.delay(100);
    tt[i] = co_await sys.time();
    co_await rig.sim.delay(100);
    tb[i] = co_await sys.ftime();
  };
  w(0);
  w(1);
  rig.sim.run_for(5'000'000);
  EXPECT_EQ(tv[0], tv[1]);
  EXPECT_EQ(tt[0], tt[1]);
  EXPECT_EQ(tb[0], tb[1]);
  EXPECT_GT(tv[0].total_us(), 0);
}

TEST(TimeSyscallsTest, CallTypeTravelsInTheRound) {
  Rig rig(2);
  rig.start();
  auto w = [&](std::uint32_t i) -> sim::Task {
    TimeSyscalls sys(*rig.svcs[i], ThreadId{4});
    co_await rig.sim.delay(50 + i * 31);
    (void)co_await sys.time();
  };
  w(0);
  w(1);
  rig.sim.run_for(2'000'000);
  ASSERT_FALSE(rig.rounds[0].empty());
  EXPECT_EQ(rig.rounds[0].back().call_type, ClockCallType::kTime);
  EXPECT_STREQ(to_string(ClockCallType::kTime), "time");
}

// --- Fast-forward guard -----------------------------------------------------------------------

TEST(CtsForwardGuardTest, SteppedClockCannotYankTheGroupClockForward) {
  // Replica 0's hardware clock is stepped +60s mid-run.  With the guard
  // enabled, even rounds it WINS advance the group clock by at most the
  // configured bound, and agreement is preserved.
  Rig rig(3, ReplicationStyle::kActive, 1, DriftCompensation::kNone,
          /*max_forward_jump=*/50'000);
  rig.start();
  rig.run_workers(30);
  rig.clocks[0]->step(60'000'000);
  for (auto& r : rig.readings) r.clear();
  rig.run_workers(60);
  for (std::size_t i = 1; i < rig.readings[0].size(); ++i) {
    const Micros delta = rig.readings[0][i] - rig.readings[0][i - 1];
    EXPECT_GT(delta, 0);
    EXPECT_LE(delta, 50'000) << "guard failed at reading " << i;
  }
  EXPECT_EQ(rig.readings[1], rig.readings[0]);
  EXPECT_EQ(rig.readings[2], rig.readings[0]);
}

TEST(CtsForwardGuardTest, GuardOffAllowsTheJump) {
  Rig rig(3, ReplicationStyle::kActive, 1, DriftCompensation::kNone, /*max_forward_jump=*/0);
  rig.start();
  rig.run_workers(10);
  const Micros before_step = rig.readings[0].back();
  for (auto& c : rig.clocks) c->step(60'000'000);  // everyone steps: jump is "real"
  for (auto& r : rig.readings) r.clear();
  rig.run_workers(10);
  // With no guard, the group clock follows the (unanimous) step: the first
  // reading after the step jumps by ~60s.
  EXPECT_GT(rig.readings[0].front() - before_step, 50'000'000);
  EXPECT_EQ(rig.readings[1], rig.readings[0]);
}

// --- Checkpoint / restore ----------------------------------------------------------------------

TEST(CtsCheckpointTest, RoundNumbersSurviveCheckpointRestore) {
  Rig rig(2);
  rig.start();
  rig.run_workers(10);
  const Bytes cp = rig.svcs[0]->checkpoint();

  // A brand-new service restored from the checkpoint continues the round
  // numbering rather than restarting from zero.
  Rig rig2(2, ReplicationStyle::kActive, 99);
  rig2.start();
  rig2.svcs[0]->restore(cp);
  EXPECT_EQ(rig2.svcs[0]->last_group_clock(), rig.svcs[0]->last_group_clock());
}

TEST(CtsCheckpointTest, CheckpointIsDeterministic) {
  Rig rig(2);
  rig.start();
  rig.run_workers(5);
  EXPECT_EQ(rig.svcs[0]->checkpoint(), rig.svcs[0]->checkpoint());
}

// --- Teardown with a round in flight ----------------------------------------------------

// Lives in the coroutine frame, so its destructor runs exactly when the
// frame is destroyed — on normal completion or, for a round that can never
// complete, when the torn-down service drops the parked continuation.
struct FrameProbe {
  bool* destroyed;
  ~FrameProbe() { *destroyed = true; }
};

sim::Task await_unfinishable_round(ConsistentTimeService& svc, bool* destroyed, bool* resumed) {
  FrameProbe probe{destroyed};
  (void)co_await svc.get_time(kThread0);
  *resumed = true;
}

TEST(CtsTeardownTest, ServiceDestroyedMidRoundDestroysSuspendedFrame) {
  // Regression for the historical frame leak: a logical thread blocked in a
  // clock-related operation parked its frame behind a bare callback; tearing
  // the service down destroyed the callback but not the frame, and every
  // failover/recovery test tripped LeakSanitizer.
  bool destroyed = false;
  bool resumed = false;
  {
    // Passive style: replica 1 is a backup, so its round never sends a
    // proposal, and no other replica runs this thread — the await can
    // never complete.
    Rig rig(2, ReplicationStyle::kPassive);
    rig.start();
    await_unfinishable_round(*rig.svcs[1], &destroyed, &resumed);
    rig.sim.run_for(200'000);
    EXPECT_FALSE(destroyed);  // parked on the in-flight round, frame alive
    EXPECT_FALSE(resumed);
  }  // ~Rig destroys the service with the round still in flight
  EXPECT_TRUE(destroyed);
  EXPECT_FALSE(resumed);
}

sim::Task await_time_once(ConsistentTimeService& svc, bool* destroyed, Micros* value) {
  FrameProbe probe{destroyed};
  *value = co_await svc.get_time(kThread0);
}

sim::Task await_syscall_once(ConsistentTimeService& svc, bool* destroyed, Micros* value) {
  FrameProbe probe{destroyed};
  TimeSyscalls sys(svc, kThread0);
  *value = co_await sys.clock_gettime();
}

TEST(CtsTeardownTest, ReentrantCoroutineRejectionResumesWithNoTime) {
  // Regression for a use-after-free: the rejection path in start_round_impl
  // used to let the by-value RoundContinuation destroy the suspended frame
  // on `return false`, after which the awaiter wrote kNoTime into the freed
  // frame and scheduled a resume (and second destroy) of the dead handle.
  // The frame must instead stay owned by the awaiter, resume with kNoTime,
  // and be destroyed exactly once (ASan verifies the "once").
  bool d_first = false, r_first = false;
  bool d_second = false, d_third = false;
  Micros v_second = 0, v_third = 0;
  // Passive style: replica 1 is a backup, so its round never sends a
  // proposal and stays in flight indefinitely.
  Rig rig(2, ReplicationStyle::kPassive);
  rig.start();
  await_unfinishable_round(*rig.svcs[1], &d_first, &r_first);
  rig.sim.run_for(10'000);
  ASSERT_FALSE(d_first);  // first round parked, frame alive

  // Further rounds on the same thread while the first is in flight are
  // rejected.  Both coroutine entry points share the rejection path —
  // exercise the TimeAwaiter (get_time) and the TimeSyscalls awaiter.
  await_time_once(*rig.svcs[1], &d_second, &v_second);
  await_syscall_once(*rig.svcs[1], &d_third, &v_third);
  rig.sim.run_for(100'000);
  EXPECT_TRUE(d_second);  // resumed, ran to completion, frame freed
  EXPECT_EQ(v_second, kNoTime);
  EXPECT_TRUE(d_third);
  EXPECT_EQ(v_third, kNoTime);
  EXPECT_EQ(rig.svcs[1]->stats().reentrant_rejected, 2u);
  // The in-flight round and its parked frame are untouched by the rejections.
  EXPECT_FALSE(d_first);
  EXPECT_FALSE(r_first);
}

TEST(CtsTeardownTest, CompletedRoundStillRunsFrameToCompletion) {
  // The destroy-on-drop machinery must not fire for rounds that complete
  // normally: the frame resumes, finishes, and frees itself exactly once.
  bool destroyed = false;
  bool resumed = false;
  {
    Rig rig(2);
    rig.start();
    await_unfinishable_round(*rig.svcs[0], &destroyed, &resumed);  // active: completes
    rig.sim.run_for(2'000'000);
    EXPECT_TRUE(resumed);
    EXPECT_TRUE(destroyed);
  }
}

}  // namespace
}  // namespace cts::ccs
