// Unit tests for the topology layer (app/topology.hpp): the ShardMap is
// the single source of naming truth for sharded deployments — group ids,
// stamp streams, per-ring seeds, and request routing all come from it, so
// its invariants (disjointness, determinism, parse behaviour) are pinned
// here once instead of re-derived in every rig.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "app/kv_store.hpp"
#include "app/topology.hpp"
#include "common/bytes.hpp"

namespace cts::app {
namespace {

TEST(TopologyTest, ParseAcceptsRingsTimesServersAndBareRingCount) {
  const auto a = TopologySpec::parse("4x6");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->rings, 4u);
  EXPECT_EQ(a->servers, 6u);
  const auto b = TopologySpec::parse("16");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->rings, 16u);
  EXPECT_EQ(b->servers, TopologySpec{}.servers);
  EXPECT_FALSE(TopologySpec::parse("").has_value());
  EXPECT_FALSE(TopologySpec::parse("x3").has_value());
}

TEST(TopologyTest, GroupNamespacesAreDisjointAcrossRingsAndRoles) {
  const ShardMap map(TopologySpec{8, 3, true});
  std::set<std::uint32_t> ids;
  for (std::size_t r = 0; r < map.rings(); ++r) {
    ids.insert(map.server_group(r).value);
    ids.insert(map.client_group(r).value);
    ids.insert(map.cross_group(r).value);
  }
  // 8 rings x 3 roles, no collisions anywhere.
  EXPECT_EQ(ids.size(), 24u);
  // The cross-ring group must never alias a server group: stamped messages
  // delivered to a server group would be executed as garbage RMI requests.
  for (std::size_t r = 0; r < map.rings(); ++r) {
    for (std::size_t j = 0; j < map.rings(); ++j) {
      EXPECT_NE(map.cross_group(r).value, map.server_group(j).value);
    }
  }
}

TEST(TopologyTest, CrossGroupRoundTripsThroughRingOfCrossGroup) {
  const ShardMap map(TopologySpec{5, 3, true});
  for (std::size_t r = 0; r < map.rings(); ++r) {
    EXPECT_EQ(map.ring_of_cross_group(map.cross_group(r)), r);
  }
}

TEST(TopologyTest, StampStreamsAreDistinctPerRingAndPerApp) {
  const ShardMap map(TopologySpec{4, 3, true});
  std::set<std::uint32_t> tags;
  for (std::size_t r = 0; r < map.rings(); ++r) {
    tags.insert(map.ping_stream(r).value);
    tags.insert(map.kv_stream(r).value);
    tags.insert(map.session_stream(r).value);
  }
  EXPECT_EQ(tags.size(), 12u);
}

TEST(TopologyTest, RingSeedsDifferPerRingButAreDeterministic) {
  std::set<std::uint64_t> seeds;
  for (std::size_t r = 0; r < 32; ++r) seeds.insert(ShardMap::ring_seed(7, r));
  EXPECT_EQ(seeds.size(), 32u);
  EXPECT_EQ(ShardMap::ring_seed(7, 5), ShardMap::ring_seed(7, 5));
  EXPECT_NE(ShardMap::ring_seed(7, 5), ShardMap::ring_seed(8, 5));
}

TEST(TopologyTest, KeyAndSessionPlacementIsStableAndInRange) {
  const ShardMap map(TopologySpec{16, 3, true});
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::size_t shard = map.shard_of_key(key);
    EXPECT_LT(shard, map.rings());
    EXPECT_EQ(shard, map.shard_of_key(key));  // pure function of the key
    const std::size_t s2 = map.shard_of_session(static_cast<std::uint64_t>(i) * 977 + 13);
    EXPECT_LT(s2, map.rings());
  }
  // All shards of a 16-ring map are actually reachable from small key sets
  // (the router sweep in ctsweep depends on this).
  std::set<std::size_t> hit;
  for (int i = 0; i < 200; ++i) hit.insert(map.shard_of_key("k" + std::to_string(i)));
  EXPECT_EQ(hit.size(), map.rings());
}

TEST(TopologyTest, OwnerOfKvRequestRoutesByKeyAndRejectsGarbage) {
  const ShardMap map(TopologySpec{4, 3, true});
  const Bytes put = kv_put("alpha", "v");
  const auto owner = map.owner_of_kv_request(put);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(*owner, map.shard_of_key("alpha"));
  // Every KV verb on the same key routes to the same ring.
  EXPECT_EQ(map.owner_of_kv_request(kv_get("alpha")), owner);
  EXPECT_EQ(map.owner_of_kv_request(kv_del("alpha")), owner);
  EXPECT_EQ(map.owner_of_kv_request(kv_migrate("alpha", 2)), owner);

  // Non-KV and malformed payloads are not routable: the router serves them
  // locally instead of guessing.
  EXPECT_FALSE(map.owner_of_kv_request(Bytes{}).has_value());
  BytesWriter w;
  w.u8(200);  // op far outside the routable range
  w.str("alpha");
  EXPECT_FALSE(map.owner_of_kv_request(std::move(w).take()).has_value());
}

}  // namespace
}  // namespace cts::app
