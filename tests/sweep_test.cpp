// ScenarioSweep: parallel seed/config matrices with a deterministic merge.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "app/testbed.hpp"
#include "sim/sweep.hpp"

namespace cts {
namespace {

TEST(ScenarioSweep, ResultsKeepRegistrationOrder) {
  sim::ScenarioSweep sweep;
  for (int i = 0; i < 16; ++i) {
    sweep.add("s" + std::to_string(i), [i] { return std::to_string(i * i); });
  }
  for (unsigned threads : {1u, 4u, 16u, 32u}) {
    const auto results = sweep.run(threads);
    ASSERT_EQ(results.size(), 16u);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(results[static_cast<std::size_t>(i)].index, static_cast<std::size_t>(i));
      EXPECT_EQ(results[static_cast<std::size_t>(i)].name, "s" + std::to_string(i));
      EXPECT_EQ(results[static_cast<std::size_t>(i)].output, std::to_string(i * i));
    }
  }
}

TEST(ScenarioSweep, MergedOutputIdenticalAcrossWorkerCounts) {
  // Real workloads: one small testbed per seed, each fully self-contained.
  auto build = [] {
    sim::ScenarioSweep sweep;
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
      sweep.add("seed" + std::to_string(seed), [seed] {
        app::TestbedConfig cfg;
        cfg.seed = seed;
        app::Testbed tb(cfg);
        tb.start();
        tb.sim().run_for(400'000);
        return "{\"events\": " + std::to_string(tb.sim().events_executed()) +
               ", \"tokens\": " +
               std::to_string(tb.recorder().trace().count(obs::EventKind::kTokenPass)) + "}";
      });
    }
    return sweep;
  };
  auto s1 = build();
  const auto serial = sim::ScenarioSweep::merged_jsonl(s1.run(1));
  EXPECT_FALSE(serial.empty());
  auto s2 = build();
  EXPECT_EQ(sim::ScenarioSweep::merged_jsonl(s2.run(2)), serial);
  auto s4 = build();
  EXPECT_EQ(sim::ScenarioSweep::merged_jsonl(s4.run(4)), serial);
}

TEST(ScenarioSweep, AllScenariosRunExactlyOnce) {
  std::atomic<int> runs{0};
  sim::ScenarioSweep sweep;
  for (int i = 0; i < 25; ++i) {
    sweep.add("n" + std::to_string(i), [&runs] {
      runs.fetch_add(1, std::memory_order_relaxed);
      return std::string("ok");
    });
  }
  const auto results = sweep.run(8);
  EXPECT_EQ(runs.load(), 25);
  for (const auto& r : results) EXPECT_EQ(r.output, "ok");
}

TEST(ScenarioSweep, MergedJsonlQuotesNonJsonOutputs) {
  sim::ScenarioSweep sweep;
  sweep.add("json", [] { return std::string("{\"x\": 1}"); });
  sweep.add("text", [] { return std::string("plain"); });
  const auto merged = sim::ScenarioSweep::merged_jsonl(sweep.run(1));
  EXPECT_EQ(merged,
            "{\"scenario\": \"json\", \"result\": {\"x\": 1}}\n"
            "{\"scenario\": \"text\", \"result\": \"plain\"}\n");
}

}  // namespace
}  // namespace cts
