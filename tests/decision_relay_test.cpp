// Tests for the generic nondeterministic-decision relay (semi-active
// replication's Delta-4 mechanism, paper Section 2).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gcs/gcs.hpp"
#include "net/network.hpp"
#include "replication/decision_relay.hpp"
#include "sim/simulator.hpp"
#include "totem/totem.hpp"

namespace cts::replication {
namespace {

constexpr GroupId kGroup{1};
constexpr ConnectionId kConn{300};

struct Rig {
  sim::Simulator sim{1};
  net::Network net;
  std::vector<std::unique_ptr<totem::TotemNode>> totems;
  std::vector<std::unique_ptr<gcs::GcsEndpoint>> eps;
  std::vector<std::unique_ptr<DecisionRelay>> relays;

  explicit Rig(std::size_t n) : net(sim, {}) {
    totem::TotemConfig tcfg;
    for (std::uint32_t i = 0; i < n; ++i) tcfg.universe.push_back(NodeId{i});
    for (std::uint32_t i = 0; i < n; ++i) {
      totems.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
      eps.push_back(std::make_unique<gcs::GcsEndpoint>(sim, *totems.back()));
      relays.push_back(
          std::make_unique<DecisionRelay>(sim, *eps.back(), kGroup, kConn, ReplicaId{i}));
    }
    relays[0]->set_primary(true);
    for (auto& t : totems) t->start();
    sim.run_for(100'000);
  }
};

Bytes val(std::uint64_t v) {
  BytesWriter w;
  w.u64(v);
  return std::move(w).take();
}
std::uint64_t unval(const Bytes& b) { return BytesReader(b).u64(); }

sim::Task decide_loop(DecisionRelay& relay, ThreadId stream, Rng rng, int n,
                      std::vector<std::uint64_t>& out, sim::Simulator& sim) {
  for (int i = 0; i < n; ++i) {
    co_await sim.delay(200);
    // Each replica's local "random" decider draws from a DIFFERENT stream —
    // the relay must make them agree anyway.
    const std::uint64_t mine = rng.next();
    const Bytes decided = co_await relay.decide_await(stream, [mine] { return val(mine); });
    out.push_back(unval(decided));
  }
}

TEST(DecisionRelayTest, BackupsAdoptThePrimarysDecisions) {
  Rig rig(3);
  std::vector<std::vector<std::uint64_t>> got(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    decide_loop(*rig.relays[i], ThreadId{0}, Rng(100 + i), 20, got[i], rig.sim);
  }
  rig.sim.run_for(60'000'000);
  ASSERT_EQ(got[0].size(), 20u);
  EXPECT_EQ(got[1], got[0]);
  EXPECT_EQ(got[2], got[0]);
  // The adopted values are the primary's own draws.
  Rng primary_rng(100);
  for (std::size_t i = 0; i < got[0].size(); ++i) {
    EXPECT_EQ(got[0][i], primary_rng.next());
  }
}

TEST(DecisionRelayTest, OnlyPrimarySendsDecisions) {
  Rig rig(3);
  std::vector<std::vector<std::uint64_t>> got(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    decide_loop(*rig.relays[i], ThreadId{0}, Rng(100 + i), 10, got[i], rig.sim);
  }
  rig.sim.run_for(60'000'000);
  EXPECT_EQ(rig.relays[0]->decisions_made(), 10u);
  EXPECT_EQ(rig.relays[1]->decisions_made(), 0u);
  EXPECT_EQ(rig.relays[2]->decisions_made(), 0u);
}

TEST(DecisionRelayTest, IndependentStreamsDoNotInterfere) {
  Rig rig(2);
  std::vector<std::uint64_t> s1_a, s1_b, s2_a, s2_b;
  decide_loop(*rig.relays[0], ThreadId{1}, Rng(5), 10, s1_a, rig.sim);
  decide_loop(*rig.relays[0], ThreadId{2}, Rng(6), 10, s2_a, rig.sim);
  decide_loop(*rig.relays[1], ThreadId{1}, Rng(7), 10, s1_b, rig.sim);
  decide_loop(*rig.relays[1], ThreadId{2}, Rng(8), 10, s2_b, rig.sim);
  rig.sim.run_for(60'000'000);
  EXPECT_EQ(s1_a, s1_b);
  EXPECT_EQ(s2_a, s2_b);
  EXPECT_NE(s1_a, s2_a);  // streams carry different decision sequences
}

TEST(DecisionRelayTest, PromotedBackupReissuesPendingDecision) {
  Rig rig(3);
  std::vector<std::uint64_t> got0, got1;
  decide_loop(*rig.relays[0], ThreadId{0}, Rng(100), 5, got0, rig.sim);
  decide_loop(*rig.relays[1], ThreadId{0}, Rng(200), 6, got1, rig.sim);
  // Let five decisions land everywhere.
  while (got1.size() < 5 && rig.sim.now() < 60'000'000) rig.sim.run_until(rig.sim.now() + 1'000);
  ASSERT_EQ(got1.size(), 5u);

  // The primary dies; the backup's 6th decision is pending with nothing
  // buffered.  Promotion re-issues it from the backup's own decider.
  rig.totems[0]->crash();
  rig.relays[1]->set_primary(true);
  rig.sim.run_for(30'000'000);
  ASSERT_EQ(got1.size(), 6u);
  Rng backup_rng(200);
  std::uint64_t sixth = 0;
  for (int i = 0; i < 6; ++i) sixth = backup_rng.next();
  EXPECT_EQ(got1.back(), sixth);
}

TEST(DecisionRelayTest, DeterministicAcrossRuns) {
  auto run = [] {
    Rig rig(2);
    std::vector<std::uint64_t> got;
    decide_loop(*rig.relays[1], ThreadId{0}, Rng(9), 8, got, rig.sim);
    std::vector<std::uint64_t> primary_side;
    decide_loop(*rig.relays[0], ThreadId{0}, Rng(3), 8, primary_side, rig.sim);
    rig.sim.run_for(60'000'000);
    return got;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace cts::replication
