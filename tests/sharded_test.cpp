// Tests for sharded (multi-threaded) replicas: each shard is a logical
// thread with its own CCS handler stream, requests route deterministically
// by key, shards process concurrently, and the GET_STATE barrier brings
// all shards to quiescence for state transfer (paper Sections 2 and 3.2).
#include <gtest/gtest.h>

#include "app/kv_store.hpp"
#include "app/testbed.hpp"

namespace cts::app {
namespace {

struct ShardedKv {
  Testbed tb;

  explicit ShardedKv(std::uint32_t shards, std::size_t servers = 3, std::uint64_t seed = 1)
      : tb(make_cfg(shards, servers, seed)) {
    tb.start();
  }

  static TestbedConfig make_cfg(std::uint32_t shards, std::size_t servers, std::uint64_t seed) {
    TestbedConfig cfg;
    cfg.servers = servers;
    cfg.seed = seed;
    cfg.factory = kv_store_factory();
    cfg.shards = shards;
    cfg.shard_fn = kv_shard_of;
    return cfg;
  }

  KvReply call(Bytes request, Micros budget = 30'000'000) {
    KvReply out;
    bool done = false;
    tb.client().invoke(std::move(request), [&](const Bytes& r) {
      out = KvReply::parse(r);
      done = true;
    });
    const Micros deadline = tb.sim().now() + budget;
    while (!done && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 10'000);
    EXPECT_TRUE(done) << "request timed out";
    return out;
  }

  KvStoreApp& shard_app(std::uint32_t server, std::uint32_t shard) {
    return static_cast<KvStoreApp&>(tb.server(server).app(shard));
  }

  void expect_all_shards_identical() {
    tb.sim().run_for(2'000'000);
    for (std::uint32_t s = 1; s < tb.server_count(); ++s) {
      if (!tb.clock_of(tb.server_node(s)).alive()) continue;
      for (std::uint32_t sh = 0; sh < tb.server(s).shard_count(); ++sh) {
        EXPECT_EQ(shard_app(s, sh).state_digest(), shard_app(0, sh).state_digest())
            << "server " << s << " shard " << sh << " diverged";
      }
    }
  }
};

TEST(ShardedTest, FourShardsServeDisjointKeys) {
  ShardedKv kv(4);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(kv.call(kv_put("key" + std::to_string(i), "v" + std::to_string(i))).status,
              KvStatus::kOk);
  }
  // Keys spread across shards; every shard holds something.
  std::size_t total = 0;
  int populated = 0;
  for (std::uint32_t sh = 0; sh < 4; ++sh) {
    total += kv.shard_app(0, sh).key_count();
    populated += kv.shard_app(0, sh).key_count() > 0;
  }
  EXPECT_EQ(total, 40u);
  EXPECT_GE(populated, 3);  // 40 hashed keys essentially never land in <3 of 4 shards
  kv.expect_all_shards_identical();
}

TEST(ShardedTest, SameKeyAlwaysSameShard) {
  ShardedKv kv(4);
  kv.call(kv_put("stable-key", "v1"));
  kv.call(kv_put("stable-key", "v2"));
  kv.call(kv_put("stable-key", "v3"));
  const KvReply g = kv.call(kv_get("stable-key"));
  EXPECT_EQ(g.version, 3u);  // all three writes hit the same shard state
  EXPECT_EQ(g.value, "v3");
}

TEST(ShardedTest, LeasesWorkPerShardWithDistinctClockThreads) {
  ShardedKv kv(4);
  // Leases on several keys (distinct shards, distinct CCS handler streams).
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(kv.call(kv_acquire("lock" + std::to_string(i), 1, 20'000)).status, KvStatus::kOk);
  }
  kv.tb.sim().run_for(300'000);
  // Every lease expired, identically at all replicas and shards.
  std::uint64_t expired = 0;
  for (std::uint32_t sh = 0; sh < 4; ++sh) expired += kv.shard_app(0, sh).leases_expired();
  EXPECT_EQ(expired, 8u);
  kv.expect_all_shards_identical();
}

TEST(ShardedTest, ShardsProcessConcurrently) {
  // One slow (lease => CCS round) op per shard, issued back-to-back: with
  // concurrent shards the total time is far below 4x one op.
  ShardedKv kv(4);
  // Find 4 keys that land in 4 distinct shards.
  std::vector<std::string> keys;
  std::set<std::uint32_t> used;
  for (int i = 0; keys.size() < 4 && i < 1000; ++i) {
    const std::string k = "probe" + std::to_string(i);
    gcs::Message m;
    m.payload = kv_acquire(k, 1, 1000);
    const auto sh = kv_shard_of(m) % 4;
    if (used.insert(sh).second) keys.push_back(k);
  }
  ASSERT_EQ(keys.size(), 4u);

  // Measure the instant the last reply arrives (recorded inside the
  // callback), not the polling-loop position: run_until() pauses on 10ms
  // boundaries, which would quantize both measurements to the same window.
  int done = 0;
  Micros last_reply = 0;
  const Micros t0 = kv.tb.sim().now();
  for (const auto& k : keys) {
    kv.tb.client().invoke(kv_acquire(k, 2, 1'000'000), [&](const Bytes&) {
      ++done;
      last_reply = kv.tb.sim().now();
    });
  }
  while (done < 4) kv.tb.sim().run_until(kv.tb.sim().now() + 10'000);
  const Micros elapsed_concurrent = last_reply - t0;

  // Baseline: the same four ops on a single-sharded deployment.
  ShardedKv kv1(1, 3, 2);
  int done1 = 0;
  Micros last_reply1 = 0;
  const Micros t1 = kv1.tb.sim().now();
  for (const auto& k : keys) {
    kv1.tb.client().invoke(kv_acquire(k, 2, 1'000'000), [&](const Bytes&) {
      ++done1;
      last_reply1 = kv1.tb.sim().now();
    });
  }
  while (done1 < 4) kv1.tb.sim().run_until(kv1.tb.sim().now() + 10'000);
  const Micros elapsed_serial = last_reply1 - t1;

  EXPECT_LT(elapsed_concurrent, elapsed_serial);
}

TEST(ShardedTest, RecoveryBarrierBringsAllShardsToQuiescence) {
  ShardedKv kv(4);
  for (int i = 0; i < 30; ++i) {
    kv.call(kv_put("key" + std::to_string(i), "v"));
  }
  kv.call(kv_acquire("key3", 7, 60'000'000));

  kv.tb.crash_server(2);
  kv.call(kv_put("post-crash", "x"));

  bool recovered = false;
  kv.tb.restart_server(2, [&] { recovered = true; });
  const Micros deadline = kv.tb.sim().now() + 300'000'000;
  while (!recovered && kv.tb.sim().now() < deadline) {
    kv.tb.sim().run_until(kv.tb.sim().now() + 10'000);
  }
  ASSERT_TRUE(recovered);

  kv.call(kv_put("post-recovery", "y"));
  kv.expect_all_shards_identical();
  // The still-live lease is enforced at the recovered replica too.
  EXPECT_EQ(kv.call(kv_put("key3", "intrude", 1)).status, KvStatus::kLeaseHeld);
}

TEST(ShardedTest, MixedShardedWorkloadNeverDiverges) {
  ShardedKv kv(3, 3, 5);
  Rng rng(44);
  for (int i = 0; i < 80; ++i) {
    const std::string key = "k" + std::to_string(rng.below(12));
    switch (rng.below(4)) {
      case 0:
        kv.call(kv_put(key, "v" + std::to_string(i), rng.below(3)));
        break;
      case 1:
        kv.call(kv_get(key));
        break;
      case 2:
        kv.call(kv_acquire(key, 1 + rng.below(3), 1'000 + (Micros)rng.below(30'000)));
        break;
      case 3:
        kv.call(kv_release(key, 1 + rng.below(3)));
        break;
    }
  }
  kv.expect_all_shards_identical();
}

TEST(ShardedTest, SemiActiveShardedWorks) {
  TestbedConfig cfg;
  cfg.servers = 3;
  cfg.style = replication::ReplicationStyle::kSemiActive;
  cfg.factory = kv_store_factory();
  cfg.shards = 2;
  cfg.shard_fn = kv_shard_of;
  Testbed tb(cfg);
  tb.start();
  KvReply out;
  bool done = false;
  tb.client().invoke(kv_acquire("lock", 1, 50'000), [&](const Bytes& r) {
    out = KvReply::parse(r);
    done = true;
  });
  while (!done) tb.sim().run_until(tb.sim().now() + 10'000);
  EXPECT_EQ(out.status, KvStatus::kOk);
  tb.sim().run_for(2'000'000);
  for (std::uint32_t s = 1; s < 3; ++s) {
    for (std::uint32_t sh = 0; sh < 2; ++sh) {
      EXPECT_EQ(static_cast<KvStoreApp&>(tb.server(s).app(sh)).state_digest(),
                static_cast<KvStoreApp&>(tb.server(0).app(sh)).state_digest());
    }
  }
}

}  // namespace
}  // namespace cts::app
