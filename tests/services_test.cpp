// Tests for the services built ON TOP of the group clock: deterministic
// timers (GroupTimerService) and unique-id generation
// (ConsistentIdGenerator) — the two motivating use cases from the paper's
// introduction.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "clock/physical_clock.hpp"
#include "cts/consistent_time_service.hpp"
#include "cts/group_timers.hpp"
#include "cts/id_gen.hpp"
#include "gcs/gcs.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "totem/totem.hpp"

namespace cts::ccs {
namespace {

constexpr GroupId kGroup{1};
constexpr ConnectionId kCcsConn{100};

struct Rig {
  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<totem::TotemNode>> totems;
  std::vector<std::unique_ptr<gcs::GcsEndpoint>> eps;
  std::vector<std::unique_ptr<clock::PhysicalClock>> clocks;
  std::vector<std::unique_ptr<ConsistentTimeService>> svcs;

  explicit Rig(std::size_t n, std::uint64_t seed = 1) : sim(seed), net(sim, {}) {
    totem::TotemConfig tcfg;
    for (std::uint32_t i = 0; i < n; ++i) tcfg.universe.push_back(NodeId{i});
    Rng crng(seed * 7919 + 13);
    for (std::uint32_t i = 0; i < n; ++i) {
      totems.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
      eps.push_back(std::make_unique<gcs::GcsEndpoint>(sim, *totems.back()));
      clocks.push_back(
          std::make_unique<clock::PhysicalClock>(sim, clock::random_clock_config(crng)));
      svcs.push_back(std::make_unique<ConsistentTimeService>(
          sim, *eps.back(), *clocks.back(), CtsConfig{kGroup, kCcsConn, ReplicaId{i}}));
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      totems[i]->start();
      eps[i]->join_group(kGroup, ReplicaId{i});
    }
    sim.run_for(100'000);
  }
};

// --- GroupTimerService --------------------------------------------------------

sim::Task read_group_time(ConsistentTimeService& svc, ThreadId t, Micros& out) {
  out = co_await svc.get_time(t);
}

TEST(GroupTimerTest, FiresAfterDeadline) {
  Rig rig(2);
  std::vector<std::unique_ptr<GroupTimerService>> timers;
  for (auto& svc : rig.svcs) {
    timers.push_back(std::make_unique<GroupTimerService>(*svc, GroupTimerService::Config{}));
  }
  Micros base0 = 0, base1 = 0;
  read_group_time(*rig.svcs[0], ThreadId{1}, base0);
  read_group_time(*rig.svcs[1], ThreadId{1}, base1);
  rig.sim.run_for(1'000'000);
  ASSERT_NE(base0, 0);
  ASSERT_EQ(base0, base1);

  std::vector<Micros> fire0, fire1;
  timers[0]->schedule_after(base0, 5'000, [&](Micros t) { fire0.push_back(t); });
  timers[1]->schedule_after(base1, 5'000, [&](Micros t) { fire1.push_back(t); });
  rig.sim.run_for(30'000'000);
  ASSERT_EQ(fire0.size(), 1u);
  ASSERT_EQ(fire1.size(), 1u);
  EXPECT_GE(fire0[0], base0 + 5'000);
  // Identical observed fire time at both replicas — the whole point.
  EXPECT_EQ(fire0[0], fire1[0]);
}

TEST(GroupTimerTest, FiringOrderIsDeadlineOrderAndIdenticalAcrossReplicas) {
  Rig rig(3);
  std::vector<std::unique_ptr<GroupTimerService>> timers;
  for (auto& svc : rig.svcs) {
    timers.push_back(std::make_unique<GroupTimerService>(*svc, GroupTimerService::Config{}));
  }
  std::vector<std::vector<int>> order(3);
  // Schedule in a scrambled order; deadlines decide the firing order.
  const Micros base = 1056326400LL * 1000000LL + 10'000'000;
  for (std::uint32_t r = 0; r < 3; ++r) {
    timers[r]->schedule_at(base + 30'000, [&, r](Micros) { order[r].push_back(3); });
    timers[r]->schedule_at(base + 10'000, [&, r](Micros) { order[r].push_back(1); });
    timers[r]->schedule_at(base + 20'000, [&, r](Micros) { order[r].push_back(2); });
  }
  rig.sim.run_for(60'000'000);
  for (std::uint32_t r = 0; r < 3; ++r) {
    ASSERT_EQ(order[r].size(), 3u) << "replica " << r;
    EXPECT_EQ(order[r], (std::vector<int>{1, 2, 3}));
  }
}

TEST(GroupTimerTest, SameDeadlineBreaksTiesById) {
  Rig rig(2);
  GroupTimerService t0(*rig.svcs[0], GroupTimerService::Config{});
  GroupTimerService t1(*rig.svcs[1], GroupTimerService::Config{});
  const Micros base = 1056326400LL * 1000000LL + 1'000'000;
  std::vector<int> fired0, fired1;
  t0.schedule_at(base, [&](Micros) { fired0.push_back(1); });
  t0.schedule_at(base, [&](Micros) { fired0.push_back(2); });
  t1.schedule_at(base, [&](Micros) { fired1.push_back(1); });
  t1.schedule_at(base, [&](Micros) { fired1.push_back(2); });
  rig.sim.run_for(30'000'000);
  EXPECT_EQ(fired0, (std::vector<int>{1, 2}));
  EXPECT_EQ(fired1, fired0);
}

TEST(GroupTimerTest, CancelPreventsFiring) {
  Rig rig(2);
  GroupTimerService t0(*rig.svcs[0], GroupTimerService::Config{});
  GroupTimerService t1(*rig.svcs[1], GroupTimerService::Config{});
  const Micros base = 1056326400LL * 1000000LL + 1'000'000;
  bool fired = false;
  auto id0 = t0.schedule_at(base, [&](Micros) { fired = true; });
  auto id1 = t1.schedule_at(base, [&](Micros) { fired = true; });
  EXPECT_TRUE(t0.cancel(id0));
  EXPECT_TRUE(t1.cancel(id1));
  rig.sim.run_for(20'000'000);
  EXPECT_FALSE(fired);
  EXPECT_FALSE(t0.cancel(id0));  // second cancel reports failure
}

TEST(GroupTimerTest, PollingStopsWhenNoTimersArmed) {
  Rig rig(2);
  GroupTimerService t0(*rig.svcs[0], GroupTimerService::Config{});
  GroupTimerService t1(*rig.svcs[1], GroupTimerService::Config{});
  const Micros base = 1056326400LL * 1000000LL;
  int fires = 0;
  t0.schedule_at(base + 1'000'000, [&](Micros) { ++fires; });
  t1.schedule_at(base + 1'000'000, [&](Micros) { ++fires; });
  rig.sim.run_for(10'000'000);
  ASSERT_EQ(fires, 2);
  const auto rounds_after = rig.svcs[0]->stats().rounds_completed;
  rig.sim.run_for(10'000'000);
  // No armed timers => no more polling rounds.
  EXPECT_EQ(rig.svcs[0]->stats().rounds_completed, rounds_after);
}

TEST(GroupTimerTest, TimerChainsReArm) {
  Rig rig(2);
  GroupTimerService t0(*rig.svcs[0], GroupTimerService::Config{});
  GroupTimerService t1(*rig.svcs[1], GroupTimerService::Config{});
  std::vector<Micros> fires0, fires1;
  // A self-re-arming periodic timer, 3 ticks.
  std::function<void(GroupTimerService&, std::vector<Micros>&, Micros)> arm =
      [&](GroupTimerService& svc, std::vector<Micros>& out, Micros deadline) {
        svc.schedule_at(deadline, [&svc, &out, deadline, &arm](Micros t) {
          out.push_back(t);
          if (out.size() < 3) arm(svc, out, deadline + 10'000);
        });
      };
  const Micros base = 1056326400LL * 1000000LL + 1'000'000;
  arm(t0, fires0, base);
  arm(t1, fires1, base);
  rig.sim.run_for(60'000'000);
  ASSERT_EQ(fires0.size(), 3u);
  EXPECT_EQ(fires0, fires1);
  EXPECT_LT(fires0[0], fires0[1]);
  EXPECT_LT(fires0[1], fires0[2]);
}

TEST(GroupTimerTest, TimersKeepFiringAfterAMemberCrashes) {
  Rig rig(3);
  std::vector<std::unique_ptr<GroupTimerService>> timers;
  for (auto& svc : rig.svcs) {
    timers.push_back(std::make_unique<GroupTimerService>(*svc, GroupTimerService::Config{}));
  }
  const Micros base = 1056326400LL * 1000000LL + 1'000'000;
  std::vector<Micros> fire0, fire1;
  // Two timers at every replica; replica 3 dies between the fire times.
  timers[0]->schedule_at(base, [&](Micros t) { fire0.push_back(t); });
  timers[1]->schedule_at(base, [&](Micros t) { fire1.push_back(t); });
  timers[2]->schedule_at(base, [](Micros) {});
  timers[0]->schedule_at(base + 3'000'000, [&](Micros t) { fire0.push_back(t); });
  timers[1]->schedule_at(base + 3'000'000, [&](Micros t) { fire1.push_back(t); });
  timers[2]->schedule_at(base + 3'000'000, [](Micros) {});

  rig.sim.run_for(2'000'000);
  rig.totems[2]->crash();
  rig.clocks[2]->fail();
  rig.sim.run_for(30'000'000);

  ASSERT_EQ(fire0.size(), 2u);
  EXPECT_EQ(fire0, fire1);  // survivors still agree on both fire times
  EXPECT_LT(fire0[0], fire0[1]);
}

// --- ConsistentIdGenerator ------------------------------------------------------

TEST(IdGenTest, MixIsDeterministic) {
  EXPECT_EQ(ConsistentIdGenerator::mix(100, 1, 7), ConsistentIdGenerator::mix(100, 1, 7));
  EXPECT_NE(ConsistentIdGenerator::mix(100, 1, 7), ConsistentIdGenerator::mix(100, 2, 7));
  EXPECT_NE(ConsistentIdGenerator::mix(100, 1, 7), ConsistentIdGenerator::mix(100, 1, 8));
  EXPECT_NE(ConsistentIdGenerator::mix(100, 1, 7), ConsistentIdGenerator::mix(101, 1, 7));
}

TEST(IdGenTest, MixAvalanche) {
  // Neighbouring inputs should produce wildly different ids (they feed hash
  // tables); check a weak avalanche property.
  int close = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto a = ConsistentIdGenerator::mix(1'000'000 + i, 1, 1);
    const auto b = ConsistentIdGenerator::mix(1'000'000 + i + 1, 1, 1);
    if (__builtin_popcountll(a ^ b) < 16) ++close;
  }
  EXPECT_LT(close, 10);
}

sim::Task mint(ConsistentIdGenerator& gen, std::vector<std::uint64_t>& out, int n,
               sim::Simulator& sim) {
  for (int i = 0; i < n; ++i) {
    co_await sim.delay(100);
    out.push_back(co_await gen.make_id());
  }
}

TEST(IdGenTest, ReplicasMintIdenticalIdSequences) {
  Rig rig(3);
  std::vector<std::unique_ptr<ConsistentIdGenerator>> gens;
  std::vector<std::vector<std::uint64_t>> ids(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    gens.push_back(std::make_unique<ConsistentIdGenerator>(*rig.svcs[i], ThreadId{50}, 1));
    mint(*gens.back(), ids[i], 20, rig.sim);
  }
  rig.sim.run_for(60'000'000);
  ASSERT_EQ(ids[0].size(), 20u);
  EXPECT_EQ(ids[1], ids[0]);
  EXPECT_EQ(ids[2], ids[0]);
}

TEST(IdGenTest, IdsAreUniqueWithinAGenerator) {
  Rig rig(2);
  ConsistentIdGenerator g0(*rig.svcs[0], ThreadId{50}, 1);
  ConsistentIdGenerator g1(*rig.svcs[1], ThreadId{50}, 1);
  std::vector<std::uint64_t> ids0, ids1;
  mint(g0, ids0, 50, rig.sim);
  mint(g1, ids1, 50, rig.sim);
  rig.sim.run_for(120'000'000);
  ASSERT_EQ(ids0.size(), 50u);
  std::set<std::uint64_t> uniq(ids0.begin(), ids0.end());
  EXPECT_EQ(uniq.size(), ids0.size());
}

TEST(IdGenTest, DifferentNamespacesNeverCollide) {
  // Two groups minting from similar clock values must not collide; the
  // namespace separates them.  Tested at the mix level across a large
  // sample.
  std::set<std::uint64_t> a, b;
  for (std::uint64_t c = 1; c <= 10'000; ++c) {
    a.insert(ConsistentIdGenerator::mix(1'000'000, c, 1));
    b.insert(ConsistentIdGenerator::mix(1'000'000, c, 2));
  }
  std::vector<std::uint64_t> inter;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(inter));
  EXPECT_TRUE(inter.empty());
}

TEST(IdGenTest, CounterTracksMintedIds) {
  Rig rig(2);
  ConsistentIdGenerator g0(*rig.svcs[0], ThreadId{50}, 1);
  ConsistentIdGenerator g1(*rig.svcs[1], ThreadId{50}, 1);
  std::vector<std::uint64_t> ids0, ids1;
  mint(g0, ids0, 5, rig.sim);
  mint(g1, ids1, 5, rig.sim);
  rig.sim.run_for(30'000'000);
  EXPECT_EQ(g0.minted(), 5u);
}

}  // namespace
}  // namespace cts::ccs
